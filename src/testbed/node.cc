#include "src/testbed/node.h"

#include <optional>

#include "src/netsim/pfc.h"

namespace strom {

Node::Node(Simulator& sim, const Profile& profile, Ipv4Addr ip, MacAddr mac,
           const ArpTable& arp)
    : sim_(sim),
      ip_(ip),
      mac_(mac),
      tlb_(Tlb::kDefaultCapacity),
      dma_(sim, memory_, tlb_, profile.dma),
      stack_(sim, profile.roce, dma_, ip, mac, arp),
      engine_(sim, stack_, dma_),
      controller_(sim, stack_, &engine_, profile.controller),
      driver_(sim, memory_, tlb_, controller_),
      tcp_(sim, cpu_, ip, mac, arp) {}

void Node::AttachTelemetry(Telemetry* telemetry, int index) {
  const std::string process = "node" + std::to_string(index);
  driver_.AttachTelemetry(telemetry, process);
  controller_.AttachTelemetry(telemetry, process);
  stack_.AttachTelemetry(telemetry, process);
  engine_.AttachTelemetry(telemetry, process);
  dma_.AttachTelemetry(telemetry, process);
}

void Node::AttachCapture(PcapWriter* writer, int index) {
  stack_.AttachCapture(writer, "node" + std::to_string(index));
}

void Node::AttachSampler(Telemetry* telemetry, int index) {
  const std::string process = "node" + std::to_string(index);
  stack_.AttachSampler(telemetry, process);
  dma_.AttachSampler(telemetry, process);
  engine_.AttachSampler(telemetry, process);
}

void Node::OnFrame(FrameBuf frame, TraceContext trace) {
  // A dead NIC receives nothing; the link already counted the frame as
  // delivered, so link conservation is unaffected.
  if (!nic_alive_) {
    ++crash_rx_drops_;
    return;
  }
  // Peek at the IP protocol field (Eth 14 + IP offset 9). Read-only access
  // must go through the const accessors: mutable data() would invalidate the
  // frame's memoized header/ICRC cache on every received frame.
  const FrameBuf& peek = frame;
  if (IsFlowControlFrame(peek)) {
    // 802.3x pause from the adjacent switch port: throttle the RoCE TX
    // serializer. Pause is hop-by-hop and never reaches the RoCE parser.
    if (std::optional<uint16_t> quanta = ParsePauseFrame(peek)) {
      stack_.Pause(*quanta);
    }
    return;
  }
  if (frame.size() > EthHeader::kSize + 9 &&
      LoadBe16(peek.data() + 12) == kEtherTypeIpv4) {
    const uint8_t protocol = peek[EthHeader::kSize + 9];
    if (protocol == kIpProtoTcp) {
      // The TCP stack still speaks ByteBuffer; convert at this boundary.
      tcp_.OnFrame(frame.ToBuffer());
      return;
    }
  }
  stack_.OnFrame(std::move(frame), trace);
}

void Node::SetFrameSender(RoceStack::FrameSender sender) {
  // Belt-and-braces egress gate: the stack's own crash-epoch guards orphan
  // pre-crash TX events, but anything that still reaches the wire boundary
  // of a dead NIC (e.g. TCP, which has no crash epoch) is dropped here.
  auto gated = [this, sender](FrameBuf frame, TraceContext trace) {
    if (!nic_alive_) {
      ++crash_tx_drops_;
      return;
    }
    sender(std::move(frame), trace);
  };
  stack_.SetFrameSender(gated);
  tcp_.SetFrameSender([gated](ByteBuffer frame) {
    gated(FrameBuf::Adopt(std::move(frame)), TraceContext{});
  });
}

void Node::Crash(FaultTargetKind kind) {
  // Order matters: kill the wire boundary first so completion callbacks
  // fired by the flushes below cannot pump frames out of a mid-death NIC,
  // then orphan DMA completions before the stack flush errors every QP, so
  // a flush-triggered re-post never observes a half-dead DMA engine.
  nic_alive_ = false;
  if (kind == FaultTargetKind::kHost) {
    host_alive_ = false;  // same power domain: a host crash takes the NIC too
  }
  dma_.Crash();
  stack_.Crash();
  engine_.Crash();
}

void Node::Restart(FaultTargetKind kind) {
  if (kind == FaultTargetKind::kHost) {
    host_alive_ = true;
  }
  nic_alive_ = true;
}

}  // namespace strom
