#include "src/testbed/node.h"

#include <optional>

#include "src/netsim/pfc.h"

namespace strom {

Node::Node(Simulator& sim, const Profile& profile, Ipv4Addr ip, MacAddr mac,
           const ArpTable& arp)
    : sim_(sim),
      ip_(ip),
      mac_(mac),
      tlb_(Tlb::kDefaultCapacity),
      dma_(sim, memory_, tlb_, profile.dma),
      stack_(sim, profile.roce, dma_, ip, mac, arp),
      engine_(sim, stack_, dma_),
      controller_(sim, stack_, &engine_, profile.controller),
      driver_(sim, memory_, tlb_, controller_),
      tcp_(sim, cpu_, ip, mac, arp) {}

void Node::AttachTelemetry(Telemetry* telemetry, int index) {
  const std::string process = "node" + std::to_string(index);
  driver_.AttachTelemetry(telemetry, process);
  controller_.AttachTelemetry(telemetry, process);
  stack_.AttachTelemetry(telemetry, process);
  engine_.AttachTelemetry(telemetry, process);
  dma_.AttachTelemetry(telemetry, process);
}

void Node::AttachCapture(PcapWriter* writer, int index) {
  stack_.AttachCapture(writer, "node" + std::to_string(index));
}

void Node::AttachSampler(Telemetry* telemetry, int index) {
  const std::string process = "node" + std::to_string(index);
  stack_.AttachSampler(telemetry, process);
  dma_.AttachSampler(telemetry, process);
  engine_.AttachSampler(telemetry, process);
}

void Node::OnFrame(FrameBuf frame, TraceContext trace) {
  // Peek at the IP protocol field (Eth 14 + IP offset 9). Read-only access
  // must go through the const accessors: mutable data() would invalidate the
  // frame's memoized header/ICRC cache on every received frame.
  const FrameBuf& peek = frame;
  if (IsFlowControlFrame(peek)) {
    // 802.3x pause from the adjacent switch port: throttle the RoCE TX
    // serializer. Pause is hop-by-hop and never reaches the RoCE parser.
    if (std::optional<uint16_t> quanta = ParsePauseFrame(peek)) {
      stack_.Pause(*quanta);
    }
    return;
  }
  if (frame.size() > EthHeader::kSize + 9 &&
      LoadBe16(peek.data() + 12) == kEtherTypeIpv4) {
    const uint8_t protocol = peek[EthHeader::kSize + 9];
    if (protocol == kIpProtoTcp) {
      // The TCP stack still speaks ByteBuffer; convert at this boundary.
      tcp_.OnFrame(frame.ToBuffer());
      return;
    }
  }
  stack_.OnFrame(std::move(frame), trace);
}

void Node::SetFrameSender(RoceStack::FrameSender sender) {
  stack_.SetFrameSender(sender);
  tcp_.SetFrameSender([sender](ByteBuffer frame) {
    sender(FrameBuf::Adopt(std::move(frame)), TraceContext{});
  });
}

}  // namespace strom
