// Latency sample accumulation with the percentiles the paper reports
// (median with 1st/99th-percentile whiskers).
#ifndef SRC_TESTBED_STATS_H_
#define SRC_TESTBED_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/time.h"

namespace strom {

class LatencyStats {
 public:
  void Add(SimTime sample) {
    samples_.push_back(sample);
    sorted_valid_ = false;
  }
  // Folds another accumulator's samples into this one. Percentiles sort, so
  // the result is independent of merge order — per-shard stats (e.g. the
  // YCSB engine's per-host shards) fold into identical aggregates at any
  // worker-thread count.
  void Merge(const LatencyStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_valid_ = false;
  }
  size_t count() const { return samples_.size(); }

  SimTime Percentile(double p) const {
    STROM_CHECK(!samples_.empty());
    // Sort once, reuse across the median/p1/p99 calls every bench row makes;
    // Add() invalidates the cache.
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    const double rank = p / 100.0 * (static_cast<double>(sorted_.size()) - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<SimTime>(static_cast<double>(sorted_[lo]) * (1 - frac) +
                                static_cast<double>(sorted_[hi]) * frac);
  }

  SimTime Median() const { return Percentile(50); }
  SimTime P1() const { return Percentile(1); }
  SimTime P99() const { return Percentile(99); }

  double MeanUs() const {
    STROM_CHECK(!samples_.empty());
    double sum = 0;
    for (SimTime s : samples_) {
      sum += ToUs(s);
    }
    return sum / static_cast<double>(samples_.size());
  }

 private:
  std::vector<SimTime> samples_;
  mutable std::vector<SimTime> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace strom

#endif  // SRC_TESTBED_STATS_H_
