// Latency sample accumulation with the percentiles the paper reports
// (median with 1st/99th-percentile whiskers).
#ifndef SRC_TESTBED_STATS_H_
#define SRC_TESTBED_STATS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/time.h"

namespace strom {

class LatencyStats {
 public:
  void Add(SimTime sample) { samples_.push_back(sample); }
  size_t count() const { return samples_.size(); }

  SimTime Percentile(double p) const {
    STROM_CHECK(!samples_.empty());
    std::vector<SimTime> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * (static_cast<double>(sorted.size()) - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<SimTime>(static_cast<double>(sorted[lo]) * (1 - frac) +
                                static_cast<double>(sorted[hi]) * frac);
  }

  SimTime Median() const { return Percentile(50); }
  SimTime P1() const { return Percentile(1); }
  SimTime P99() const { return Percentile(99); }

  double MeanUs() const {
    STROM_CHECK(!samples_.empty());
    double sum = 0;
    for (SimTime s : samples_) {
      sum += ToUs(s);
    }
    return sum / static_cast<double>(samples_.size());
  }

 private:
  std::vector<SimTime> samples_;
};

}  // namespace strom

#endif  // SRC_TESTBED_STATS_H_
