#include "src/cpu/cpu_model.h"

#include <array>
#include <cmath>

#include "src/common/logging.h"

namespace strom {

namespace {

SimTime TimeForRate(uint64_t bytes, double bytes_per_us) {
  return static_cast<SimTime>(std::ceil(static_cast<double>(bytes) / bytes_per_us *
                                        static_cast<double>(kUs)));
}

// Fig 13a measured points (threads, Gbit/s).
constexpr std::array<std::pair<int, double>, 4> kHllPoints = {{
    {1, 4.64},
    {2, 9.28},
    {4, 18.40},
    {8, 24.40},
}};

}  // namespace

SimTime CpuModel::Crc64Time(uint64_t bytes) const {
  return TimeForRate(bytes, params_.crc64_bytes_per_us);
}

SimTime CpuModel::MemcpyTime(uint64_t bytes) const {
  return TimeForRate(bytes, params_.memcpy_bytes_per_us);
}

SimTime CpuModel::PartitionTime(uint64_t bytes) const {
  return TimeForRate(bytes, params_.partition_bytes_per_us);
}

double CpuModel::HllThroughputGbps(int threads) const {
  STROM_CHECK_GE(threads, 1);
  if (threads >= kHllPoints.back().first) {
    return kHllPoints.back().second;  // memory-bandwidth plateau
  }
  for (size_t i = 0; i + 1 < kHllPoints.size(); ++i) {
    const auto [t0, g0] = kHllPoints[i];
    const auto [t1, g1] = kHllPoints[i + 1];
    if (threads == t0) {
      return g0;
    }
    if (threads < t1) {
      // Geometric interpolation in log-thread space.
      const double f = (std::log2(threads) - std::log2(t0)) / (std::log2(t1) - std::log2(t0));
      return g0 * std::pow(g1 / g0, f);
    }
  }
  return kHllPoints.back().second;
}

SimTime CpuModel::HllTime(uint64_t bytes, int threads) const {
  const double gbps = HllThroughputGbps(threads);
  const double bytes_per_us = gbps * 1000.0 / 8.0;
  return TimeForRate(bytes, bytes_per_us);
}

}  // namespace strom
