// Calibrated cost model for the software baselines the paper compares
// against (an Intel Core i7-7700 @ 3.6 GHz class host). Every constant is
// annotated with its paper or datasheet justification; the model converts
// work descriptions (bytes hashed, tuples partitioned, ...) into simulated
// CPU time.
#ifndef SRC_CPU_CPU_MODEL_H_
#define SRC_CPU_CPU_MODEL_H_

#include <cstdint>

#include "src/sim/time.h"

namespace strom {

struct CpuModelParams {
  // "A modern CPU's memory latency is roughly 80 ns" (paper §6.2 fn. 7):
  // cost of one dependent pointer chase to DRAM.
  SimTime dram_latency = Ns(80);

  // Table-driven CRC64 (no SIMD possible, paper §6.3 fn. 8): ~1 byte/cycle
  // on a 3.6 GHz core in the dependent-chain regime -> ~2.8 GB/s, but with
  // load overheads a calibrated ~1.4 GB/s lands the "up to 40% overhead" of
  // Fig 9 at 4 KiB objects.
  double crc64_bytes_per_us = 1400.0;

  // Streaming memcpy bandwidth (one core): ~10 GB/s.
  double memcpy_bytes_per_us = 10'000.0;

  // Software radix partitioning (Barthels et al. style: one pass + copy into
  // partition buffers): calibrated so partitioning 1 GB of 8 B tuples adds
  // ~0.35 s over the plain RDMA WRITE in Fig 11 -> ~2.9 GB/s.
  double partition_bytes_per_us = 2900.0;

  // Kernel-crossing costs for the TCP baseline.
  SimTime syscall_overhead = Ns(1500);   // send/recv syscall entry/exit
  SimTime interrupt_wakeup = Us(10);     // NIC IRQ + softirq + scheduler wakeup
  SimTime rpc_marshal = Us(6);           // rpcgen XDR encode/decode per side

  // AVX2 multi-threaded HLL throughput while RDMA ingest competes for memory
  // bandwidth — the measured points of Fig 13a, in Gbit/s.
  // {1 -> 4.64, 2 -> 9.28, 4 -> 18.40, 8 -> 24.40}
};

class CpuModel {
 public:
  explicit CpuModel(CpuModelParams params = {}) : params_(params) {}

  const CpuModelParams& params() const { return params_; }

  // One dependent DRAM access (list-element hop).
  SimTime DramAccess() const { return params_.dram_latency; }

  SimTime Crc64Time(uint64_t bytes) const;
  SimTime MemcpyTime(uint64_t bytes) const;
  SimTime PartitionTime(uint64_t bytes) const;
  SimTime SyscallOverhead() const { return params_.syscall_overhead; }
  SimTime InterruptWakeup() const { return params_.interrupt_wakeup; }
  SimTime RpcMarshal() const { return params_.rpc_marshal; }

  // HLL throughput for `threads` concurrent workers with RDMA ingest
  // running (Fig 13a calibration table; geometric interpolation between
  // measured thread counts, clamped at the 8-thread plateau).
  double HllThroughputGbps(int threads) const;
  SimTime HllTime(uint64_t bytes, int threads) const;

 private:
  CpuModelParams params_;
};

}  // namespace strom

#endif  // SRC_CPU_CPU_MODEL_H_
