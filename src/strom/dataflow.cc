#include "src/strom/dataflow.h"

#include <algorithm>

namespace strom {

Stage::Stage(Simulator& sim, SimTime clock_ps, std::string name)
    : sim_(sim), clock_ps_(clock_ps), name_(std::move(name)) {}

void Stage::Wake() {
  if (wake_pending_) {
    return;
  }
  wake_pending_ = true;
  const SimTime at = std::max(sim_.now(), ready_time_);
  sim_.ScheduleAt(at, [this] { Run(); });
}

void Stage::Run() {
  wake_pending_ = false;
  const uint64_t cycles = Fire();
  if (cycles > 0) {
    ++firings_;
    ready_time_ = sim_.now() + static_cast<SimTime>(cycles) * clock_ps_;
    Wake();  // try the next item once this one has drained through
  }
}

}  // namespace strom
