// The StRoM kernel hardware interface (paper §5.2, Listing 1, Fig 4).
//
//   void strom_kernel(stream<ap_uint<24>>&  qpnIn,        // 24b QPN bus
//                     stream<ap_uint<256>>& paramIn,      // 32B parameter bus
//                     stream<net_axis<512>>& roceDataIn,  // 64B data from RX
//                     stream<memCmd>&       dmaCmdOut,    // 12B command bus
//                     stream<net_axis<512>>& dmaDataOut,  // 64B data to DMA
//                     stream<net_axis<512>>& dmaDataIn,   // 64B data from DMA
//                     stream<roceMeta>&     roceMetaOut,  // 20B metadata bus
//                     stream<net_axis<512>>& roceDataOut);// 64B data to TX
//
// Stream items here carry up to one MTU of bytes plus a `last` flag; stage
// timing charges one cycle per data-path word, so the model behaves like the
// word-serial hardware while keeping event counts proportional to packets.
#ifndef SRC_STROM_KERNEL_H_
#define SRC_STROM_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/frame_buf.h"
#include "src/common/types.h"
#include "src/sim/fifo.h"
#include "src/strom/dataflow.h"

namespace strom {

// One item on a 64B-wide data stream (net_axis<512>): a chunk of bytes plus
// the end-of-message flag. The chunk is a ref-counted FrameBuf view, so RPC
// payloads and DMA read data flow into kernels without an ingress copy —
// kernels read wire bytes in place via span().
struct NetChunk {
  FrameBuf data;
  bool last = true;
  // Set by the engine when the DMA read backing this chunk failed (data is
  // empty). Kernels must treat it as a failed operation — respond with an
  // error status, never block waiting for the missing bytes.
  bool error = false;
};

// DMA command issued by a kernel over the 12B command bus: virtual address +
// length (+ direction, encoded in the channel selector bit of the real bus).
struct MemCmd {
  VirtAddr addr = 0;
  uint32_t length = 0;
  bool is_write = false;
};

// Metadata for a kernel-initiated RDMA WRITE over the 20B bus: queue pair,
// target virtual address, and length.
struct RoceMeta {
  Qpn qpn = 0;
  VirtAddr addr = 0;
  uint32_t length = 0;
};

struct KernelConfig {
  SimTime clock_ps = 6400;  // matches the RoCE stack clock
  uint32_t data_width = 8;  // bytes per cycle on the data streams
};

// The eight streams of the fixed hardware interface. Depths model the FIFO
// sizing of the HLS implementation; data FIFOs are deeper because a chunk
// here stands for many hardware words.
struct KernelStreams {
  Fifo<Qpn> qpn_in{64, "qpnIn"};
  Fifo<ByteBuffer> param_in{64, "paramIn"};
  Fifo<NetChunk> roce_data_in{4096, "roceDataIn"};
  Fifo<MemCmd> dma_cmd_out{256, "dmaCmdOut"};
  Fifo<NetChunk> dma_data_out{1024, "dmaDataOut"};
  Fifo<NetChunk> dma_data_in{1024, "dmaDataIn"};
  Fifo<RoceMeta> roce_meta_out{256, "roceMetaOut"};
  Fifo<NetChunk> roce_data_out{1024, "roceDataOut"};
};

// Status word appended by kernels to their response writes so the requester
// can poll an 8-byte completion and learn the outcome (found / not-found /
// checksum-failed / error) plus an iteration count (traversal hops, CRC
// retries, ...). Always non-zero, so polling a zeroed target word works.
enum class KernelStatusCode : uint8_t {
  kOk = 1,
  kNotFound = 2,
  kError = 3,
  kChecksumFailed = 4,
  // Host-local fence code, never emitted by a kernel: the session layer
  // pokes it into a polled status word when a crash guarantees the real
  // response can no longer arrive (responder state dropped, or the local
  // NIC lost the QP). Pollers treat it as a distinct "fenced-stale" terminal
  // outcome, separate from completed and errored.
  kFencedStale = 5,
};

inline uint64_t MakeStatusWord(KernelStatusCode code, uint32_t iterations, uint32_t extra = 0) {
  return static_cast<uint64_t>(code) | (static_cast<uint64_t>(iterations & 0xFFFFFF) << 8) |
         (static_cast<uint64_t>(extra) << 32);
}
inline KernelStatusCode StatusWordCode(uint64_t word) {
  return static_cast<KernelStatusCode>(word & 0xFF);
}
inline uint32_t StatusWordIterations(uint64_t word) {
  return static_cast<uint32_t>((word >> 8) & 0xFFFFFF);
}
inline uint32_t StatusWordExtra(uint64_t word) { return static_cast<uint32_t>(word >> 32); }
inline constexpr size_t kStatusWordSize = 8;

// Base class for deployable kernels. Subclasses build their stage pipeline
// over `streams()` in the constructor; the StromEngine services the output
// side (DMA commands, RDMA writes) and feeds the input side (RPC dispatch).
class StromKernel {
 public:
  StromKernel(Simulator& sim, KernelConfig config) : sim_(sim), config_(config) {}
  virtual ~StromKernel() = default;

  StromKernel(const StromKernel&) = delete;
  StromKernel& operator=(const StromKernel&) = delete;

  // RPC op-code this kernel matches (paper §5.1: carried in the RETH address
  // field, resembling Portals matching).
  virtual uint32_t rpc_opcode() const = 0;
  virtual std::string name() const = 0;

  // Crash semantics: the deployed bitstream survives a NIC power cycle but
  // everything in flight does not. The default drains all eight interface
  // FIFOs; kernels holding multi-invocation state beyond their streams
  // override and chain up.
  virtual void Reset() {
    streams_.qpn_in.Clear();
    streams_.param_in.Clear();
    streams_.roce_data_in.Clear();
    streams_.dma_cmd_out.Clear();
    streams_.dma_data_out.Clear();
    streams_.dma_data_in.Clear();
    streams_.roce_meta_out.Clear();
    streams_.roce_data_out.Clear();
  }

  KernelStreams& streams() { return streams_; }

 protected:
  Simulator& sim() { return sim_; }
  const KernelConfig& config() const { return config_; }
  uint64_t Words(uint64_t bytes) const { return WordsFor(bytes, config_.data_width); }

  Simulator& sim_;
  KernelConfig config_;
  KernelStreams streams_;
};

}  // namespace strom

#endif  // SRC_STROM_KERNEL_H_
