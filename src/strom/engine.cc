#include "src/strom/engine.h"

#include <utility>

#include "src/common/logging.h"

namespace strom {

StromEngine::StromEngine(Simulator& sim, RoceStack& stack, DmaEngine& dma)
    : sim_(sim), stack_(stack), dma_(dma) {
  stack_.SetRpcHandler([this](RpcDelivery d) { return OnRpc(std::move(d)); });
  stack_.SetStreamTap([this](Qpn qpn, const FrameBuf& payload, bool last) {
    OnWriteTap(qpn, payload, last);
  });
}

void StromEngine::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  tracer_ = &telemetry->tracer;
  track_ = tracer_->RegisterTrack(process, "kernel");
  const std::string prefix = process + ".engine.";
  auto gauge = [&](const char* name, const uint64_t& field) {
    telemetry->metrics.AddGauge(prefix + name, [&field] { return double(field); });
  };
  gauge("rpcs_dispatched", counters_.rpcs_dispatched);
  gauge("rpcs_unmatched", counters_.rpcs_unmatched);
  gauge("local_invocations", counters_.local_invocations);
  gauge("kernel_dma_reads", counters_.kernel_dma_reads);
  gauge("kernel_dma_writes", counters_.kernel_dma_writes);
  gauge("kernel_dma_errors", counters_.kernel_dma_errors);
  gauge("kernel_responses", counters_.kernel_responses);
  gauge("tapped_chunks", counters_.tapped_chunks);
}

void StromEngine::AttachSampler(Telemetry* telemetry, const std::string& process) {
  telemetry->sampler.AddProbe(process + ".engine.stream_occupancy", [this](SimTime) {
    size_t n = 0;
    for (const auto& [opcode, d] : kernels_) {
      const KernelStreams& st = d->kernel->streams();
      n += st.qpn_in.size() + st.param_in.size() + st.roce_data_in.size() +
           st.dma_cmd_out.size() + st.dma_data_out.size() + st.dma_data_in.size() +
           st.roce_meta_out.size() + st.roce_data_out.size();
      n += d->qpn_inbox.size() + d->param_inbox.size() + d->data_inbox.size() +
           d->dma_in_inbox.size();
    }
    return double(n);
  });
}

Status StromEngine::DeployKernel(std::unique_ptr<StromKernel> kernel) {
  const uint32_t opcode = kernel->rpc_opcode();
  if (kernels_.count(opcode) != 0) {
    return AlreadyExistsError("RPC op-code already deployed: " + std::to_string(opcode));
  }
  auto deployed = std::make_unique<Deployed>();
  deployed->kernel = std::move(kernel);
  Deployed* d = deployed.get();
  KernelStreams& s = d->kernel->streams();

  // Output side: engine drains kernel outputs as they appear.
  s.dma_cmd_out.on_push = [this, d] { ServiceDmaCommands(*d); };
  s.dma_data_out.on_push = [this, d] { CollectDmaWrites(*d); };
  s.roce_meta_out.on_push = [this, d] { CollectResponses(*d); };
  s.roce_data_out.on_push = [this, d] { CollectResponses(*d); };

  // Input side: when the kernel pops and frees space, flush buffered items.
  s.qpn_in.on_pop = [this, d] { FlushInboxes(*d); };
  s.param_in.on_pop = [this, d] { FlushInboxes(*d); };
  s.roce_data_in.on_pop = [this, d] { FlushInboxes(*d); };
  s.dma_data_in.on_pop = [this, d] { FlushInboxes(*d); };

  kernels_.emplace(opcode, std::move(deployed));
  return Status::Ok();
}

StromKernel* StromEngine::FindKernel(uint32_t rpc_opcode) const {
  auto it = kernels_.find(rpc_opcode);
  return it == kernels_.end() ? nullptr : it->second->kernel.get();
}

bool StromEngine::OnRpc(RpcDelivery delivery) {
  auto it = kernels_.find(delivery.rpc_opcode);
  if (it == kernels_.end()) {
    ++counters_.rpcs_unmatched;
    return false;
  }
  Deployed& d = *it->second;
  ++counters_.rpcs_dispatched;
  if (delivery.is_params || delivery.first) {
    d.active_trace = delivery.trace;
    d.rpc_started = sim_.now();
  }
  // Data chunks share the ref-counted wire frame (zero-copy ingress); only
  // the parameter bus still materializes a ByteBuffer, matching the separate
  // 32B-word param FIFO of the hardware interface.
  if (delivery.is_params) {
    DeliverParams(d, delivery.qpn, delivery.payload.ToBuffer());
  } else {
    NetChunk chunk;
    chunk.data = delivery.payload;
    chunk.last = delivery.last;
    DeliverData(d, std::move(chunk));
  }
  return true;
}

Status StromEngine::InvokeLocal(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params,
                                TraceContext trace) {
  auto it = kernels_.find(rpc_opcode);
  if (it == kernels_.end()) {
    return NotFoundError("no kernel deployed for RPC op-code " + std::to_string(rpc_opcode));
  }
  ++counters_.local_invocations;
  it->second->active_trace = trace;
  it->second->rpc_started = sim_.now();
  DeliverParams(*it->second, qpn, std::move(params));
  return Status::Ok();
}

Status StromEngine::AttachReceiveTap(Qpn qpn, uint32_t rpc_opcode) {
  if (kernels_.count(rpc_opcode) == 0) {
    return NotFoundError("no kernel deployed for RPC op-code " + std::to_string(rpc_opcode));
  }
  taps_[qpn] = rpc_opcode;
  return Status::Ok();
}

void StromEngine::DetachReceiveTap(Qpn qpn) { taps_.erase(qpn); }

void StromEngine::Crash() {
  for (auto& [opcode, deployed] : kernels_) {
    (void)opcode;
    Deployed& d = *deployed;
    d.qpn_inbox.clear();
    d.param_inbox.clear();
    d.data_inbox.clear();
    d.dma_in_inbox.clear();
    d.dma_writes.clear();
    d.responses.clear();
    d.active_trace = TraceContext{};
    d.rpc_started = 0;
    d.kernel->Reset();
  }
}

void StromEngine::OnWriteTap(Qpn qpn, const FrameBuf& payload, bool last) {
  auto it = taps_.find(qpn);
  if (it == taps_.end()) {
    return;
  }
  Deployed& d = *kernels_.at(it->second);
  ++counters_.tapped_chunks;
  NetChunk chunk;
  chunk.data = payload;
  chunk.last = last;
  DeliverData(d, std::move(chunk));
}

void StromEngine::DeliverParams(Deployed& d, Qpn qpn, ByteBuffer params) {
  d.qpn_inbox.push_back(qpn);
  d.param_inbox.push_back(std::move(params));
  FlushInboxes(d);
}

void StromEngine::DeliverData(Deployed& d, NetChunk chunk) {
  d.data_inbox.push_back(std::move(chunk));
  FlushInboxes(d);
}

void StromEngine::FlushInboxes(Deployed& d) {
  KernelStreams& s = d.kernel->streams();
  while (!d.qpn_inbox.empty() && !s.qpn_in.Full() && !s.param_in.Full()) {
    s.qpn_in.Push(d.qpn_inbox.front());
    d.qpn_inbox.pop_front();
    s.param_in.Push(std::move(d.param_inbox.front()));
    d.param_inbox.pop_front();
  }
  while (!d.data_inbox.empty() && !s.roce_data_in.Full()) {
    s.roce_data_in.Push(std::move(d.data_inbox.front()));
    d.data_inbox.pop_front();
  }
  while (!d.dma_in_inbox.empty() && !s.dma_data_in.Full()) {
    s.dma_data_in.Push(std::move(d.dma_in_inbox.front()));
    d.dma_in_inbox.pop_front();
  }
}

void StromEngine::ServiceDmaCommands(Deployed& d) {
  KernelStreams& s = d.kernel->streams();
  while (!s.dma_cmd_out.Empty()) {
    MemCmd cmd = s.dma_cmd_out.Pop();
    if (cmd.is_write) {
      ++counters_.kernel_dma_writes;
      PendingDmaWrite w;
      w.addr = cmd.addr;
      w.length = cmd.length;
      w.collected.reserve(cmd.length);
      d.dma_writes.push_back(std::move(w));
    } else {
      ++counters_.kernel_dma_reads;
      Deployed* dp = &d;
      dma_.Read(cmd.addr, cmd.length, [this, dp](Result<FrameBuf> data) {
        NetChunk chunk;
        if (data.ok()) {
          chunk.data = std::move(*data);
        } else {
          STROM_LOG(kError) << "kernel DMA read failed: " << data.status();
          ++counters_.kernel_dma_errors;
          chunk.error = true;
        }
        chunk.last = true;
        dp->dma_in_inbox.push_back(std::move(chunk));
        FlushInboxes(*dp);
      }, d.active_trace);
    }
  }
  CollectDmaWrites(d);
}

void StromEngine::CollectDmaWrites(Deployed& d) {
  KernelStreams& s = d.kernel->streams();
  while (!d.dma_writes.empty()) {
    PendingDmaWrite& w = d.dma_writes.front();
    while (w.collected.size() < w.length && !s.dma_data_out.Empty()) {
      NetChunk chunk = s.dma_data_out.Pop();
      w.collected.insert(w.collected.end(), chunk.data.begin(), chunk.data.end());
    }
    if (w.collected.size() < w.length) {
      return;  // wait for more data from the kernel
    }
    STROM_CHECK_EQ(w.collected.size(), w.length)
        << "kernel " << d.kernel->name() << " overfilled a DMA write";
    Status wst = dma_.Write(w.addr, FrameBuf::Adopt(std::move(w.collected)), nullptr,
                            d.active_trace);
    if (!wst.ok()) {
      STROM_LOG(kError) << "kernel DMA write failed: " << wst;
      ++counters_.kernel_dma_errors;
    }
    d.dma_writes.pop_front();
  }
}

void StromEngine::CollectResponses(Deployed& d) {
  KernelStreams& s = d.kernel->streams();
  while (true) {
    if (d.responses.empty()) {
      if (s.roce_meta_out.Empty()) {
        return;
      }
      PendingResponse r;
      r.meta = s.roce_meta_out.Pop();
      r.collected.reserve(r.meta.length);
      d.responses.push_back(std::move(r));
    }
    PendingResponse& r = d.responses.front();
    while (r.collected.size() < r.meta.length && !s.roce_data_out.Empty()) {
      NetChunk chunk = s.roce_data_out.Pop();
      r.collected.insert(r.collected.end(), chunk.data.begin(), chunk.data.end());
    }
    if (r.collected.size() < r.meta.length) {
      return;  // wait for more response payload
    }

    WorkRequest wr;
    wr.kind = WorkRequest::Kind::kWrite;
    wr.qpn = r.meta.qpn;
    wr.remote_addr = r.meta.addr;
    wr.inline_data = std::move(r.collected);
    wr.length = r.meta.length;
    wr.trace = d.active_trace;
    ++counters_.kernel_responses;
    if (d.active_trace.sampled() && tracer_ != nullptr) {
      tracer_->Span(d.active_trace, track_, "kernel:" + d.kernel->name(), d.rpc_started,
                    sim_.now());
    }
    Status st = stack_.PostRequest(std::move(wr));
    if (!st.ok()) {
      STROM_LOG(kError) << "kernel response write rejected: " << st;
    }
    d.responses.pop_front();
  }
}

}  // namespace strom
