// StromEngine: the glue placed on the data path between the RoCE stack and
// the DMA engine (paper Fig 1/4). It
//   * deploys kernels and matches incoming RPC op-codes against them,
//   * services kernel DMA commands (dmaCmdOut/dmaDataIn/dmaDataOut) through
//     the shared DMA engine (the "DMA cmd merger" arbitration),
//   * turns kernel roceMetaOut/roceDataOut output into RDMA WRITEs back to
//     the requester (write semantics, so response size is run-time defined),
//   * supports local invocation from the host Controller, and
//   * can tap the plain RDMA WRITE receive path into a kernel
//     (bump-in-the-wire stream processing, e.g. the HLL kernel).
#ifndef SRC_STROM_ENGINE_H_
#define SRC_STROM_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/pcie/dma_engine.h"
#include "src/roce/stack.h"
#include "src/strom/kernel.h"

namespace strom {

struct EngineCounters {
  uint64_t rpcs_dispatched = 0;
  uint64_t rpcs_unmatched = 0;
  uint64_t local_invocations = 0;
  uint64_t kernel_dma_reads = 0;
  uint64_t kernel_dma_writes = 0;
  uint64_t kernel_responses = 0;
  uint64_t tapped_chunks = 0;
  uint64_t kernel_dma_errors = 0;  // kernel-issued DMA commands that failed
};

class StromEngine {
 public:
  StromEngine(Simulator& sim, RoceStack& stack, DmaEngine& dma);

  StromEngine(const StromEngine&) = delete;
  StromEngine& operator=(const StromEngine&) = delete;

  // Deploys a kernel; its RPC op-code must be unique. (Run-time exchange via
  // partial reconfiguration is modeled by deploying/replacing kernels.)
  Status DeployKernel(std::unique_ptr<StromKernel> kernel);

  StromKernel* FindKernel(uint32_t rpc_opcode) const;

  // Registers the kernel track and EngineCounters gauges.
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  // Registers an aggregate kernel stream/inbox occupancy probe with the
  // telemetry sampler.
  void AttachSampler(Telemetry* telemetry, const std::string& process);

  // Local invocation (paper §3.5): the host posts an RPC to its own NIC.
  Status InvokeLocal(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params,
                     TraceContext trace = {});

  // Routes payload of plain RDMA WRITEs arriving on `qpn` into the kernel's
  // roceDataIn stream (receive kernel on the unmodified write path).
  Status AttachReceiveTap(Qpn qpn, uint32_t rpc_opcode);
  void DetachReceiveTap(Qpn qpn);

  // NIC crash: every in-flight invocation dies — inboxes, output collection
  // state, and the kernels' interface FIFOs are drained (pooled chunk
  // buffers released). Deployed kernels and receive taps persist: they model
  // configuration, which the restart restores from stable storage.
  void Crash();

  const EngineCounters& counters() const { return counters_; }

 private:
  struct PendingDmaWrite {
    VirtAddr addr = 0;
    uint32_t length = 0;
    ByteBuffer collected;
  };
  struct PendingResponse {
    RoceMeta meta;
    ByteBuffer collected;
  };
  struct Deployed {
    std::unique_ptr<StromKernel> kernel;
    // Inboxes buffering pushes that found the kernel FIFO full.
    std::deque<Qpn> qpn_inbox;
    std::deque<ByteBuffer> param_inbox;
    std::deque<NetChunk> data_inbox;
    std::deque<NetChunk> dma_in_inbox;
    // Output-side collection state.
    std::deque<PendingDmaWrite> dma_writes;
    std::deque<PendingResponse> responses;
    // Trace of the invocation currently flowing through the kernel.
    TraceContext active_trace;
    SimTime rpc_started = 0;
  };

  bool OnRpc(RpcDelivery delivery);  // wired as the stack's RPC handler
  void OnWriteTap(Qpn qpn, const FrameBuf& payload, bool last);

  void ServiceDmaCommands(Deployed& d);
  void CollectDmaWrites(Deployed& d);
  void CollectResponses(Deployed& d);
  void FlushInboxes(Deployed& d);
  void DeliverParams(Deployed& d, Qpn qpn, ByteBuffer params);
  void DeliverData(Deployed& d, NetChunk chunk);

  Simulator& sim_;
  RoceStack& stack_;
  DmaEngine& dma_;
  std::map<uint32_t, std::unique_ptr<Deployed>> kernels_;  // by RPC op-code
  std::map<Qpn, uint32_t> taps_;
  EngineCounters counters_;
  Tracer* tracer_ = nullptr;
  TrackId track_ = kInvalidTrack;
};

}  // namespace strom

#endif  // SRC_STROM_ENGINE_H_
