// HLS-dataflow execution model for StRoM kernels. A kernel is a set of
// Stages connected by bounded Fifos, mirroring `#pragma HLS DATAFLOW` over
// functions with `#pragma HLS PIPELINE II=1` (paper Listings 2-4): every
// stage is an independently clocked hardware module that fires whenever its
// input FIFOs have data and its output FIFOs have space.
//
// A Stage::Fire() attempt processes at most one stream item and returns the
// number of clock cycles it occupies the module (0 = nothing consumed). The
// scheduler re-arms the stage when those cycles elapse or when an adjacent
// FIFO wakes it.
#ifndef SRC_STROM_DATAFLOW_H_
#define SRC_STROM_DATAFLOW_H_

#include <functional>
#include <string>
#include <utility>

#include "src/sim/fifo.h"
#include "src/sim/simulator.h"

namespace strom {

class Stage {
 public:
  Stage(Simulator& sim, SimTime clock_ps, std::string name);
  virtual ~Stage() = default;

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  // Requests a firing attempt at the earliest legal cycle.
  void Wake();

  const std::string& name() const { return name_; }
  uint64_t firings() const { return firings_; }

  // Subscribes this stage to be woken when `fifo` receives data (its input)
  // or when `fifo` frees space (its back-pressured output).
  template <typename T>
  void WakeOnPush(Fifo<T>& fifo) {
    fifo.on_push = [this] { Wake(); };
  }
  template <typename T>
  void WakeOnPop(Fifo<T>& fifo) {
    fifo.on_pop = [this] { Wake(); };
  }

 protected:
  // One firing attempt. Returns cycles consumed; 0 means the stage stays
  // idle until the next wake.
  virtual uint64_t Fire() = 0;

  Simulator& sim() { return sim_; }
  SimTime clock_ps() const { return clock_ps_; }

 private:
  void Run();

  Simulator& sim_;
  SimTime clock_ps_;
  std::string name_;
  SimTime ready_time_ = 0;
  bool wake_pending_ = false;
  uint64_t firings_ = 0;
};

// Stage defined by a callable — the common case for kernel pipeline stages.
class LambdaStage : public Stage {
 public:
  using FireFn = std::function<uint64_t()>;

  LambdaStage(Simulator& sim, SimTime clock_ps, std::string name, FireFn fire)
      : Stage(sim, clock_ps, std::move(name)), fire_(std::move(fire)) {}

 protected:
  uint64_t Fire() override { return fire_(); }

 private:
  FireFn fire_;
};

// Cycles a word-serial module needs for `bytes` of stream data at the given
// data-path width (>= 1 so zero-byte items still occupy a cycle).
inline uint64_t WordsFor(uint64_t bytes, uint32_t width) {
  if (bytes == 0) {
    return 1;
  }
  return (bytes + width - 1) / width;
}

}  // namespace strom

#endif  // SRC_STROM_DATAFLOW_H_
