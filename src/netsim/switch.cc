#include "src/netsim/switch.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/paranoid.h"
#include "src/proto/packet.h"

namespace strom {

EthernetSwitch::EthernetSwitch(Simulator& sim, SwitchConfig config)
    : sim_(sim), config_(config) {}

int EthernetSwitch::AddPort() {
  const int port = static_cast<int>(ports_.size());
  LinkConfig lc;
  lc.rate_bps = config_.port_rate_bps;
  lc.ip_mtu = config_.ip_mtu;
  Port p;
  p.link = std::make_unique<PointToPointLink>(sim_, lc);
  p.link->Attach(1, [this, port](FrameBuf frame, TraceContext trace) {
    OnFrame(port, std::move(frame), trace);
  });
  ports_.push_back(std::move(p));
  return port;
}

void EthernetSwitch::AddStaticRoute(const MacAddr& mac, int port) { mac_table_[mac] = port; }

void EthernetSwitch::AttachCapture(PcapWriter* writer) {
  for (size_t port = 0; port < ports_.size(); ++port) {
    ports_[port].link->AttachCapture(writer, "port" + std::to_string(port));
  }
}

void EthernetSwitch::OnFrame(int in_port, FrameBuf frame, TraceContext trace) {
  if (frame.size() < EthHeader::kSize) {
    return;
  }
  MacAddr dst;
  MacAddr src;
  // Fast path: the TX encoder memoized the MACs; reuse them instead of
  // re-reading the Ethernet header on every hop. Wire bytes stay
  // authoritative — a mutated frame has no memo and takes the byte path.
  if (const RoceFrameMemo* memo = frame.GetMemo<RoceFrameMemo>();
      memo != nullptr && !ParanoidMode()) {
    dst = memo->dst_mac;
    src = memo->src_mac;
  } else {
    std::copy(frame.begin(), frame.begin() + 6, dst.begin());
    std::copy(frame.begin() + 6, frame.begin() + 12, src.begin());
    if (const RoceFrameMemo* memo = frame.GetMemo<RoceFrameMemo>()) {
      STROM_CHECK(memo->dst_mac == dst && memo->src_mac == src)
          << "paranoid: memo MACs diverge from wire Ethernet header";
    }
  }
  mac_table_[src] = in_port;  // learn

  auto it = mac_table_.find(dst);
  if (it != mac_table_.end()) {
    ++frames_forwarded_;
    ForwardTo(it->second, std::move(frame), trace);
    return;
  }
  ++frames_flooded_;
  // Flooding shares the frame across ports by reference count; no per-port
  // copies.
  for (size_t port = 0; port < ports_.size(); ++port) {
    if (static_cast<int>(port) != in_port) {
      ForwardTo(static_cast<int>(port), frame, trace);
    }
  }
}

void EthernetSwitch::ForwardTo(int out_port, FrameBuf frame, TraceContext trace) {
  STROM_CHECK_LT(static_cast<size_t>(out_port), ports_.size());
  sim_.Schedule(config_.forwarding_latency,
                [this, out_port, f = std::move(frame), trace]() mutable {
    ports_[out_port].link->Send(1, std::move(f), trace);
  });
}

}  // namespace strom
