#include "src/netsim/pfc.h"

#include "src/common/bytes.h"

namespace strom {

namespace {
constexpr size_t kPauseFrameSize = 60;  // Ethernet minimum, no FCS modeled
}  // namespace

FrameBuf EncodePauseFrame(const MacAddr& src_mac, uint16_t quanta) {
  FrameBuf frame = FrameBuf::Allocate(kPauseFrameSize);  // zero-filled
  uint8_t* b = frame.data();
  std::copy(kPauseDestMac.begin(), kPauseDestMac.end(), b);
  std::copy(src_mac.begin(), src_mac.end(), b + 6);
  StoreBe16(b + 12, kEtherTypeFlowControl);
  StoreBe16(b + EthHeader::kSize, kPauseOpcode);
  StoreBe16(b + EthHeader::kSize + 2, quanta);
  // Remaining bytes are already zero padding.
  return frame;
}

bool IsFlowControlFrame(const FrameBuf& frame) {
  return frame.size() >= EthHeader::kSize &&
         LoadBe16(frame.span().data() + 12) == kEtherTypeFlowControl;
}

std::optional<uint16_t> ParsePauseFrame(const FrameBuf& frame) {
  if (frame.size() < EthHeader::kSize + 4 || !IsFlowControlFrame(frame)) {
    return std::nullopt;
  }
  const uint8_t* b = frame.span().data();
  if (LoadBe16(b + EthHeader::kSize) != kPauseOpcode) {
    return std::nullopt;
  }
  return LoadBe16(b + EthHeader::kSize + 2);
}

}  // namespace strom
