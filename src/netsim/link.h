// Full-duplex point-to-point Ethernet link model with serialization delay,
// propagation delay and fault injection (drop / corrupt). The paper's testbed
// directly connects two NICs ("to remove the potential noise introduced by a
// switch", §6.1); this link is that cable.
#ifndef SRC_NETSIM_LINK_H_
#define SRC_NETSIM_LINK_H_

#include <array>
#include <functional>
#include <map>

#include "src/common/bytes.h"
#include "src/common/frame_buf.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/proto/headers.h"
#include "src/sim/simulator.h"
#include "src/sim/spsc_channel.h"
#include "src/telemetry/pcap_writer.h"
#include "src/telemetry/telemetry.h"

namespace strom {

class LpScheduler;

struct LinkConfig {
  uint64_t rate_bps = Gbps(10);
  SimTime propagation = Ns(100);  // a few meters of fiber + PHY
  size_t ip_mtu = 1500;

  size_t EthMtu() const { return ip_mtu + EthHeader::kSize; }
};

struct LinkCounters {
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;  // includes PHY overhead
  uint64_t frames_dropped = 0;
  uint64_t frames_corrupted = 0;
  uint64_t frames_oversize = 0;
  uint64_t frames_reordered = 0;   // delivered late (reorder/jitter/DelayNext)
  uint64_t frames_duplicated = 0;  // delivered twice
  // Frames handed to the wire for delivery (corrupted ones included — the
  // receiver sees and rejects those itself). Not exported as a gauge; it
  // exists for the conservation audit: frames_sent == frames_delivered +
  // frames_dropped must hold after every Send(), and a silent_drop fault is
  // precisely a violation of it.
  uint64_t frames_delivered = 0;
};

// Per-frame verdict of an attached fault hook (see FaultEngine). Consulted
// for every frame entering Send(), after the deterministic DropNext /
// CorruptNext knobs and the legacy drop probability.
struct LinkFaultDecision {
  bool drop = false;
  bool duplicate = false;      // deliver the frame twice
  bool reorder = false;        // attribute extra_delay to reordering
  SimTime extra_delay = 0;     // added to the propagation delay
  // Vanish the frame without touching frames_dropped or the capture tap —
  // the one fault the link's own accounting cannot see. Exists to prove the
  // conservation auditors notice (tests + chaos drills only).
  bool silent = false;
};

class PointToPointLink {
 public:
  using RxHandler = std::function<void(FrameBuf frame, TraceContext trace)>;
  using FaultHook = std::function<LinkFaultDecision(int side, SimTime now)>;

  PointToPointLink(Simulator& sim, LinkConfig config);
  ~PointToPointLink();

  const LinkConfig& config() const { return config_; }

  // Registers the wire tracks and per-side counter gauges.
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  // Taps both directions of the link into `writer` (one pcapng interface per
  // direction, named "<name_prefix>.0to1" / "<name_prefix>.1to0"). Every
  // frame entering Send() is captured — including dropped, corrupted and
  // oversize ones, annotated via opt_comment — so the file shows what was
  // put on the wire, not what survived it. Must be called before traffic.
  void AttachCapture(PcapWriter* writer, const std::string& name_prefix);

  // Registers per-side link-utilization probes (fraction of line rate used
  // since the previous sample) with the telemetry sampler.
  void AttachSampler(Telemetry* telemetry, const std::string& process);

  // side is 0 or 1. The handler receives frames sent from the other side.
  void Attach(int side, RxHandler handler);

  // Conservative-parallel binding: endpoints of this link live on the given
  // logical processes (side 0 on `s0`, side 1 on `s1`). Transmit-side state
  // (serialization cursor, fault knobs, counters, capture interface) is then
  // read on the sender's clock, and cross-LP deliveries travel through SPSC
  // channels drained by the scheduler at epoch barriers instead of being
  // scheduled directly into the peer's queue. The link's propagation delay
  // becomes (part of) the scheduler's lookahead floor, which is exactly the
  // conservative-synchronization contract: an arrival can never land inside
  // the window the peer is currently executing. Call before traffic; both
  // sims must be registered with `scheduler`.
  void BindLp(Simulator* s0, Simulator* s1, LpScheduler* scheduler);

  // Transmits a frame from `side`. Serialization is modeled with a per-side
  // busy-until cursor; frames queue behind each other at line rate. The frame
  // is shared by reference count with the capture tap and the receiver.
  void Send(int side, FrameBuf frame, TraceContext trace = {});

  // Fault injection (applies to frames leaving `side`). The two-argument
  // form updates the probability without touching the RNG stream, so
  // sweeping loss rates mid-run stays deterministic point-to-point; pass a
  // seed explicitly to (re)start the stream.
  void SetDropProbability(int side, double p);
  void SetDropProbability(int side, double p, uint64_t seed);
  // Drops the next `count` frames leaving `side` deterministically.
  void DropNext(int side, int count);
  // Flips one payload byte in the next `count` frames leaving `side`.
  void CorruptNext(int side, int count);
  // Delivers the next `count` frames leaving `side` twice.
  void DuplicateNext(int side, int count);
  // Holds the next `count` frames leaving `side` back by `delay` beyond the
  // normal propagation time (later traffic overtakes them).
  void DelayNext(int side, int count, SimTime delay);
  // Installs a per-frame fault hook (at most one; driven by FaultEngine).
  // Evaluation order in Send(): oversize check, serialization accounting,
  // DropNext, drop probability, hook.drop, CorruptNext, hook delay /
  // duplication. The hook is consulted for every frame that reaches the
  // drop stage — even ones the deterministic knobs already dropped — so its
  // RNG streams advance as a pure function of the frame sequence.
  void SetFaultHook(FaultHook hook);

  const LinkCounters& counters(int side) const { return sides_[side].counters; }

  // Simulated time at which the transmit direction of `side` goes idle.
  SimTime TxIdleAt(int side) const { return sides_[side].busy_until; }

 private:
  struct Side {
    RxHandler handler;
    SimTime busy_until = 0;
    double drop_probability = 0;
    Rng drop_rng{1};
    int drop_next = 0;
    int corrupt_next = 0;
    int duplicate_next = 0;
    int delay_next = 0;
    SimTime delay_next_amount = 0;
    LinkCounters counters;
    TrackId track = kInvalidTrack;
    uint32_t capture_if = 0;
  };

  // Hands the frame to the receiving side at `arrival`, through the SPSC
  // channel when the receiver lives on another LP.
  void Deliver(int rx_side, SimTime arrival, FrameBuf frame, TraceContext trace);

  Simulator& sim_;
  LinkConfig config_;
  // Per-side owning LP; both point at `sim_` until BindLp(). Indexed by the
  // transmitting side in Send() and by the receiving side in Deliver().
  std::array<Simulator*, 2> sims_;
  // Cross-LP delivery channel into sims_[rx_side]; null when both endpoints
  // share an LP.
  std::array<SpscChannel*, 2> deliver_ = {nullptr, nullptr};
  std::array<Side, 2> sides_;
  Tracer* tracer_ = nullptr;
  PcapWriter* capture_ = nullptr;
  FaultHook fault_hook_;
};

}  // namespace strom

#endif  // SRC_NETSIM_LINK_H_
