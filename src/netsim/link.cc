#include "src/netsim/link.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/lp_scheduler.h"
#include "src/sim/perf_stats.h"
#include "src/sim/time.h"

namespace strom {

PointToPointLink::PointToPointLink(Simulator& sim, LinkConfig config)
    : sim_(sim), config_(config), sims_{&sim, &sim} {}

PointToPointLink::~PointToPointLink() {
  AddSimFramesSent(sides_[0].counters.frames_sent + sides_[1].counters.frames_sent);
}

void PointToPointLink::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  tracer_ = &telemetry->tracer;
  sides_[0].track = tracer_->RegisterTrack(process, "wire 0->1");
  sides_[1].track = tracer_->RegisterTrack(process, "wire 1->0");
  for (int side = 0; side < 2; ++side) {
    const std::string prefix = process + ".link" + std::to_string(side) + ".";
    const LinkCounters& c = sides_[side].counters;
    telemetry->metrics.AddGauge(prefix + "frames_sent",
                                [&c] { return double(c.frames_sent); });
    telemetry->metrics.AddGauge(prefix + "bytes_sent",
                                [&c] { return double(c.bytes_sent); });
    telemetry->metrics.AddGauge(prefix + "frames_dropped",
                                [&c] { return double(c.frames_dropped); });
    telemetry->metrics.AddGauge(prefix + "frames_corrupted",
                                [&c] { return double(c.frames_corrupted); });
    telemetry->metrics.AddGauge(prefix + "frames_oversize",
                                [&c] { return double(c.frames_oversize); });
    telemetry->metrics.AddGauge(prefix + "frames_reordered",
                                [&c] { return double(c.frames_reordered); });
    telemetry->metrics.AddGauge(prefix + "frames_duplicated",
                                [&c] { return double(c.frames_duplicated); });
  }
}

void PointToPointLink::AttachCapture(PcapWriter* writer, const std::string& name_prefix) {
  capture_ = writer;
  sides_[0].capture_if = writer->AddInterface(name_prefix + ".0to1");
  sides_[1].capture_if = writer->AddInterface(name_prefix + ".1to0");
}

void PointToPointLink::AttachSampler(Telemetry* telemetry, const std::string& process) {
  for (int side = 0; side < 2; ++side) {
    const Side& s = sides_[side];
    const uint64_t rate_bps = config_.rate_bps;
    telemetry->sampler.AddProbe(
        process + ".link" + std::to_string(side) + ".utilization",
        [&s, rate_bps, last_bytes = uint64_t{0}, last_t = SimTime{0}](SimTime now) mutable {
          const uint64_t bytes = s.counters.bytes_sent - last_bytes;
          const SimTime elapsed = now - last_t;
          last_bytes = s.counters.bytes_sent;
          last_t = now;
          if (elapsed <= 0) {
            return 0.0;
          }
          return double(bytes) * 8.0 / (double(rate_bps) * ToSec(elapsed));
        });
    // Cumulative fault counters, so chaos runs show up in .timeseries.csv.
    const std::string prefix = process + ".link" + std::to_string(side) + ".";
    const LinkCounters& c = s.counters;
    telemetry->sampler.AddProbe(prefix + "frames_dropped",
                                [&c](SimTime) { return double(c.frames_dropped); });
    telemetry->sampler.AddProbe(prefix + "frames_corrupted",
                                [&c](SimTime) { return double(c.frames_corrupted); });
    telemetry->sampler.AddProbe(prefix + "frames_reordered",
                                [&c](SimTime) { return double(c.frames_reordered); });
    telemetry->sampler.AddProbe(prefix + "frames_duplicated",
                                [&c](SimTime) { return double(c.frames_duplicated); });
  }
}

void PointToPointLink::Attach(int side, RxHandler handler) {
  STROM_CHECK(side == 0 || side == 1);
  sides_[side].handler = std::move(handler);
}

void PointToPointLink::BindLp(Simulator* s0, Simulator* s1, LpScheduler* scheduler) {
  sims_[0] = s0;
  sims_[1] = s1;
  if (s0 != s1) {
    deliver_[0] = scheduler->AddChannel(s0);
    deliver_[1] = scheduler->AddChannel(s1);
    scheduler->NoteLinkLookahead(config_.propagation);
  }
}

void PointToPointLink::Deliver(int rx_side, SimTime arrival, FrameBuf frame,
                               TraceContext trace) {
  auto handoff = [this, rx_side, f = std::move(frame), trace]() mutable {
    Side& receiver = sides_[rx_side];
    if (receiver.handler) {
      receiver.handler(std::move(f), trace);
    }
  };
  if (deliver_[rx_side] != nullptr) {
    deliver_[rx_side]->Push(arrival, std::move(handoff));
  } else {
    sims_[rx_side]->ScheduleAt(arrival, std::move(handoff));
  }
}

void PointToPointLink::Send(int side, FrameBuf frame, TraceContext trace) {
  STROM_CHECK(side == 0 || side == 1);
  Side& tx = sides_[side];
  // Everything on the transmit path — serialization cursor, fault knobs,
  // counters, capture — runs on the sender's LP clock.
  Simulator& sim = *sims_[side];

  if (frame.size() > config_.EthMtu()) {
    ++tx.counters.frames_oversize;
    STROM_LOG(kWarning) << "dropping oversize frame: " << frame.size() << " > "
                        << config_.EthMtu();
    if (capture_ != nullptr) {
      capture_->WritePacket(tx.capture_if, sim.now(), frame, "oversize");
    }
    return;
  }

  const uint64_t wire_bytes = frame.size() + kEthPhyOverhead;
  const SimTime start = std::max(sim.now(), tx.busy_until);
  const SimTime tx_done = start + TransferTime(wire_bytes, config_.rate_bps);
  tx.busy_until = tx_done;
  ++tx.counters.frames_sent;
  tx.counters.bytes_sent += wire_bytes;

  bool drop = false;
  if (tx.drop_next > 0) {
    --tx.drop_next;
    drop = true;
  } else if (tx.drop_probability > 0 && tx.drop_rng.Chance(tx.drop_probability)) {
    drop = true;
  }
  // Consult the fault hook unconditionally so its RNG streams see every
  // frame, regardless of what the deterministic knobs decided.
  LinkFaultDecision fault;
  if (fault_hook_) {
    fault = fault_hook_(side, sim.now());
    drop = drop || fault.drop;
  }
  if (tx.delay_next > 0) {
    --tx.delay_next;
    fault.reorder = true;
    fault.extra_delay += tx.delay_next_amount;
  }
  if (tx.duplicate_next > 0) {
    --tx.duplicate_next;
    fault.duplicate = true;
  }
  if (fault.silent && !drop) {
    // Injected silent loss: the frame is gone, and deliberately nothing —
    // not frames_dropped, not the capture tap — records it. The conservation
    // audit (frames_sent == frames_delivered + frames_dropped) is the only
    // thing that can notice.
    return;
  }
  if (drop) {
    ++tx.counters.frames_dropped;
    if (capture_ != nullptr) {
      std::string comment = "dropped";
      if (trace.sampled()) {
        comment += " trace_id=" + std::to_string(trace.id);
      }
      capture_->WritePacket(tx.capture_if, tx_done, frame, comment);
    }
    return;
  }

  bool corrupted = false;
  if (tx.corrupt_next > 0) {
    --tx.corrupt_next;
    ++tx.counters.frames_corrupted;
    corrupted = true;
    // Flip a byte beyond the Ethernet header so the ICRC check catches it.
    // The sender may still hold a reference (e.g. for retransmission), so
    // detach before mutating.
    frame.EnsureUnique();
    size_t pos = std::min(frame.size() - 1, EthHeader::kSize + Ipv4Header::kSize + 5);
    frame[pos] ^= 0xA5;
  }

  if (fault.extra_delay > 0 || fault.reorder) {
    ++tx.counters.frames_reordered;
  }

  if (capture_ != nullptr) {
    std::string comment;
    if (corrupted) {
      comment = "corrupted";
    }
    if (fault.extra_delay > 0 || fault.reorder) {
      if (!comment.empty()) {
        comment += ' ';
      }
      comment += "delayed";
    }
    if (trace.sampled()) {
      if (!comment.empty()) {
        comment += ' ';
      }
      comment += "trace_id=" + std::to_string(trace.id);
    }
    capture_->WritePacket(tx.capture_if, tx_done, frame, comment);
  }

  const SimTime arrival = tx_done + config_.propagation + fault.extra_delay;
  if (trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(trace, tx.track, "wire", start, arrival);
  }
  if (fault.duplicate) {
    // Deliver a second copy one serialization time later, as if the frame
    // had been put on the wire twice back-to-back. Duplication is a fault
    // artifact, so it doesn't consume transmit bandwidth (busy_until).
    ++tx.counters.frames_duplicated;
    const SimTime dup_arrival = arrival + TransferTime(wire_bytes, config_.rate_bps);
    if (capture_ != nullptr) {
      capture_->WritePacket(tx.capture_if, dup_arrival - config_.propagation, frame,
                            "duplicated");
    }
    Deliver(1 - side, dup_arrival, frame, trace);
  }
  ++tx.counters.frames_delivered;
  Deliver(1 - side, arrival, std::move(frame), trace);
}

void PointToPointLink::SetDropProbability(int side, double p) {
  // Deliberately leaves drop_rng alone: repeated calls (e.g. sweeping loss
  // rates in one process) continue the same stream instead of silently
  // restarting it mid-run.
  sides_[side].drop_probability = p;
}

void PointToPointLink::SetDropProbability(int side, double p, uint64_t seed) {
  sides_[side].drop_probability = p;
  sides_[side].drop_rng = Rng(seed);
}

void PointToPointLink::DropNext(int side, int count) { sides_[side].drop_next += count; }

void PointToPointLink::CorruptNext(int side, int count) { sides_[side].corrupt_next += count; }

void PointToPointLink::DuplicateNext(int side, int count) {
  sides_[side].duplicate_next += count;
}

void PointToPointLink::DelayNext(int side, int count, SimTime delay) {
  sides_[side].delay_next += count;
  sides_[side].delay_next_amount = delay;
}

void PointToPointLink::SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

}  // namespace strom
