// Store-and-forward Ethernet switch for >2-node topologies (used by the
// multi-node shuffle example). Forwards by destination MAC using a static
// table plus source-learning; unknown destinations are flooded.
#ifndef SRC_NETSIM_SWITCH_H_
#define SRC_NETSIM_SWITCH_H_

#include <map>
#include <memory>
#include <vector>

#include "src/netsim/link.h"

namespace strom {

struct SwitchConfig {
  uint64_t port_rate_bps = Gbps(10);
  SimTime forwarding_latency = Ns(600);  // lookup + queueing, cut-through class
  size_t ip_mtu = 1500;
};

class EthernetSwitch {
 public:
  EthernetSwitch(Simulator& sim, SwitchConfig config);

  // Adds a port; returns its index. The returned link's side 0 faces the
  // endpoint, side 1 faces the switch.
  int AddPort();
  PointToPointLink& PortLink(int port) { return *ports_[port].link; }

  // Optional static forwarding entry.
  void AddStaticRoute(const MacAddr& mac, int port);

  // Taps every port link into `writer` (interfaces "port<i>.0to1" /
  // "port<i>.1to0"). Call after all ports are added and before traffic.
  void AttachCapture(PcapWriter* writer);

  uint64_t frames_forwarded() const { return frames_forwarded_; }
  uint64_t frames_flooded() const { return frames_flooded_; }

 private:
  void OnFrame(int in_port, FrameBuf frame, TraceContext trace);
  void ForwardTo(int out_port, FrameBuf frame, TraceContext trace);

  struct Port {
    std::unique_ptr<PointToPointLink> link;
  };

  Simulator& sim_;
  SwitchConfig config_;
  std::vector<Port> ports_;
  std::map<MacAddr, int> mac_table_;
  uint64_t frames_forwarded_ = 0;
  uint64_t frames_flooded_ = 0;
};

// Static ARP table (the paper reuses an open-source ARP module; our testbed
// populates the table out-of-band, which is equivalent to a completed ARP
// exchange).
class ArpTable {
 public:
  void Add(Ipv4Addr ip, const MacAddr& mac) { entries_[ip] = mac; }
  bool Lookup(Ipv4Addr ip, MacAddr* mac) const {
    auto it = entries_.find(ip);
    if (it == entries_.end()) {
      return false;
    }
    *mac = it->second;
    return true;
  }
  size_t size() const { return entries_.size(); }

 private:
  std::map<Ipv4Addr, MacAddr> entries_;
};

}  // namespace strom

#endif  // SRC_NETSIM_SWITCH_H_
