// IEEE 802.3x flow-control (PAUSE) frames. A congested switch egress port
// sends a pause frame upstream when its queue crosses the xoff watermark; the
// receiving NIC stops transmitting for `quanta` x 512 bit-times, and an
// explicit quanta=0 frame resumes it early (xon). This is global pause, not
// per-priority PFC — the simulator carries a single traffic class, so the
// distinction is moot, but the wire format is the real one.
#ifndef SRC_NETSIM_PFC_H_
#define SRC_NETSIM_PFC_H_

#include <cstdint>
#include <optional>

#include "src/common/frame_buf.h"
#include "src/proto/headers.h"

namespace strom {

inline constexpr uint16_t kEtherTypeFlowControl = 0x8808;
inline constexpr uint16_t kPauseOpcode = 0x0001;
// 802.3x pause frames are addressed to a reserved multicast MAC that bridges
// never forward: pause is a hop-by-hop signal.
inline constexpr MacAddr kPauseDestMac = {0x01, 0x80, 0xC2, 0x00, 0x00, 0x01};

// Builds a minimum-size (60-byte) pause frame carrying `quanta`.
FrameBuf EncodePauseFrame(const MacAddr& src_mac, uint16_t quanta);

// Returns the pause quanta if `frame` is a well-formed 802.3x pause frame,
// nullopt otherwise (wrong ethertype / opcode / too short).
std::optional<uint16_t> ParsePauseFrame(const FrameBuf& frame);

// Cheap pre-check: does this frame carry the flow-control ethertype?
bool IsFlowControlFrame(const FrameBuf& frame);

}  // namespace strom

#endif  // SRC_NETSIM_PFC_H_
