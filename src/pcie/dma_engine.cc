#include "src/pcie/dma_engine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/time.h"

namespace strom {

DmaEngine::DmaEngine(Simulator& sim, HostMemory& memory, Tlb& tlb, DmaConfig config)
    : sim_(sim), memory_(memory), tlb_(tlb), config_(config) {}

void DmaEngine::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  tracer_ = &telemetry->tracer;
  track_ = tracer_->RegisterTrack(process, "dma");
  const std::string prefix = process + ".dma.";
  telemetry->metrics.AddGauge(prefix + "read_commands",
                              [this] { return double(counters_.read_commands); });
  telemetry->metrics.AddGauge(prefix + "write_commands",
                              [this] { return double(counters_.write_commands); });
  telemetry->metrics.AddGauge(prefix + "bytes_read",
                              [this] { return double(counters_.bytes_read); });
  telemetry->metrics.AddGauge(prefix + "bytes_written",
                              [this] { return double(counters_.bytes_written); });
  telemetry->metrics.AddGauge(prefix + "segment_splits",
                              [this] { return double(counters_.segment_splits); });
  telemetry->metrics.AddGauge(prefix + "errors",
                              [this] { return double(counters_.errors); });
}

void DmaEngine::AttachSampler(Telemetry* telemetry, const std::string& process) {
  const std::string prefix = process + ".dma.";
  telemetry->sampler.AddProbe(prefix + "read_backlog_ns", [this](SimTime now) {
    return read_busy_until_ > now ? ToNs(read_busy_until_ - now) : 0.0;
  });
  telemetry->sampler.AddProbe(prefix + "write_backlog_ns", [this](SimTime now) {
    return write_busy_until_ > now ? ToNs(write_busy_until_ - now) : 0.0;
  });
}

SimTime DmaEngine::ServiceTime(const SegmentVec& segments) const {
  SimTime t = 0;
  for (const DmaSegment& seg : segments) {
    t += std::max(config_.per_command_overhead, TransferTime(seg.length, config_.bandwidth_bps));
  }
  return t;
}

void DmaEngine::Read(VirtAddr virt, uint64_t length, ReadCallback done, TraceContext trace) {
  ++counters_.read_commands;
  if (fault_hook_) {
    Status injected = fault_hook_(/*is_write=*/false, sim_.now());
    if (!injected.ok()) {
      ++counters_.errors;
      sim_.Schedule(config_.read_latency,
                    [this, epoch = crash_epoch_, done = std::move(done),
                     st = std::move(injected)] {
                      if (crash_enabled_ && epoch != crash_epoch_) {
                        return;
                      }
                      done(st);
                    });
      return;
    }
  }
  SegmentVec segments;
  Status resolved = tlb_.ResolveInto(virt, length, segments);
  if (!resolved.ok()) {
    ++counters_.errors;
    sim_.Schedule(config_.read_latency,
                  [this, epoch = crash_epoch_, done = std::move(done),
                   st = std::move(resolved)] {
                    if (crash_enabled_ && epoch != crash_epoch_) {
                      return;
                    }
                    done(st);
                  });
    return;
  }
  counters_.segment_splits += segments.size() > 1 ? segments.size() - 1 : 0;
  counters_.bytes_read += length;

  // Reads push ahead posted writes (PCIe ordering): the completion may not
  // overtake data written before the read was issued.
  const SimTime start = std::max(sim_.now(), read_busy_until_);
  const SimTime service = ServiceTime(segments);
  read_busy_until_ = start + service;
  const SimTime complete =
      std::max(start + service + config_.read_latency, write_visible_at_);
  if (trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(trace, track_, "dma.read", sim_.now(), complete);
  }

  // The capture re-resolves `virt` instead of carrying the SegmentVec: the
  // TLB is populated once by the driver, so the completion-time resolution is
  // identical to the issue-time one, and the small capture keeps the callback
  // in SmallCallback's inline buffer (no heap allocation per DMA). With crash
  // faults enabled the capture also carries the crash epoch (one heap
  // allocation per command — crash plans are robustness runs, not perf runs):
  // a completion from before the crash fires into nothing.
  if (crash_enabled_) {
    sim_.ScheduleAt(complete,
                    [this, virt, length, epoch = crash_epoch_, done = std::move(done)] {
                      if (epoch != crash_epoch_) {
                        return;
                      }
                      CompleteRead(virt, length, done);
                    });
  } else {
    sim_.ScheduleAt(complete, [this, virt, length, done = std::move(done)] {
      CompleteRead(virt, length, done);
    });
  }
}

void DmaEngine::CompleteRead(VirtAddr virt, uint64_t length, const ReadCallback& done) {
  SegmentVec segs;
  Status st = tlb_.ResolveInto(virt, length, segs);
  if (!st.ok()) {
    done(std::move(st));
    return;
  }
  // One pooled buffer for the whole command, filled in place from the host
  // pages (no intermediate vector, no zero fill: every byte is written
  // below).
  FrameBuf data = FrameBuf::AllocateUninit(length);
  uint8_t* dst = data.data();
  size_t offset = 0;
  for (const DmaSegment& seg : segs) {
    memory_.VisitRead(seg.phys, seg.length,
                      [dst, offset](size_t at, ByteSpan src) {
                        std::memcpy(dst + offset + at, src.data(), src.size());
                      });
    offset += seg.length;
  }
  done(std::move(data));
}

Status DmaEngine::Write(VirtAddr virt, FrameBuf data, WriteCallback done, TraceContext trace) {
  ++counters_.write_commands;
  if (fault_hook_) {
    Status injected = fault_hook_(/*is_write=*/true, sim_.now());
    if (!injected.ok()) {
      // Rejected at issue time: nothing reaches host memory and the caller
      // learns synchronously (the RX path has no completion callback to
      // deliver an async error to).
      ++counters_.errors;
      return injected;
    }
  }
  SegmentVec segments;
  Status resolved = tlb_.ResolveInto(virt, data.size(), segments);
  if (!resolved.ok()) {
    ++counters_.errors;
    sim_.Schedule(config_.write_latency,
                  [this, epoch = crash_epoch_, done = std::move(done),
                   st = std::move(resolved)] {
                    if (crash_enabled_ && epoch != crash_epoch_) {
                      return;
                    }
                    done(st);
                  });
    return Status::Ok();
  }
  counters_.segment_splits += segments.size() > 1 ? segments.size() - 1 : 0;
  counters_.bytes_written += data.size();

  const SimTime start = std::max(sim_.now(), write_busy_until_);
  const SimTime service = ServiceTime(segments);
  write_busy_until_ = start + service;
  const SimTime complete = start + service + config_.write_latency;
  write_visible_at_ = std::max(write_visible_at_, complete);
  if (trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(trace, track_, "dma.write", sim_.now(), complete);
  }

  // As in Read: re-resolve instead of capturing the SegmentVec, so the
  // completion fits in SmallCallback's inline buffer. The crash-guarded
  // variant drops both the write and its pooled payload (released when the
  // dead event pops) if the engine crashed in flight.
  if (crash_enabled_) {
    sim_.ScheduleAt(complete,
                    [this, virt, epoch = crash_epoch_, d = std::move(data),
                     done = std::move(done)] {
                      if (epoch != crash_epoch_) {
                        return;
                      }
                      CompleteWrite(virt, d, done);
                    });
  } else {
    sim_.ScheduleAt(complete, [this, virt, d = std::move(data), done = std::move(done)] {
      CompleteWrite(virt, d, done);
    });
  }
  return Status::Ok();
}

void DmaEngine::CompleteWrite(VirtAddr virt, const FrameBuf& d, const WriteCallback& done) {
  SegmentVec segs;
  Status st = tlb_.ResolveInto(virt, d.size(), segs);
  if (!st.ok()) {
    if (done) {
      done(std::move(st));
    }
    return;
  }
  const uint8_t* src = d.data();
  size_t offset = 0;
  for (const DmaSegment& seg : segs) {
    memory_.VisitWrite(seg.phys, seg.length,
                       [src, offset](size_t at, MutableByteSpan dst) {
                         std::memcpy(dst.data(), src + offset + at, dst.size());
                       });
    offset += seg.length;
  }
  if (done) {
    done(Status::Ok());
  }
}

void DmaEngine::Crash() {
  ++crash_epoch_;
  // Both channels restart idle; in-flight service time dies with the
  // backlog. write_visible_at_ resets too: no pre-crash write can become
  // visible after the crash (its completion event is already fenced).
  const SimTime now = sim_.now();
  read_busy_until_ = now;
  write_busy_until_ = now;
  write_visible_at_ = now;
}

}  // namespace strom
