#include "src/pcie/tlb.h"

#include <algorithm>

namespace strom {

Status Tlb::Map(VirtAddr virt, PhysAddr phys) {
  if (HugePageOffset(virt) != 0 || HugePageOffset(phys) != 0) {
    return InvalidArgumentError("TLB mappings must be 2MiB aligned");
  }
  if (entries_.size() >= capacity_ && entries_.find(virt) == entries_.end()) {
    return ResourceExhaustedError("TLB full");
  }
  entries_[virt] = phys;
  cached_vbase_ = ~uint64_t{0};
  return Status::Ok();
}

Result<PhysAddr> Tlb::Translate(VirtAddr virt) const {
  ++lookups_;
  const uint64_t vbase = HugePageBase(virt);
  if (vbase == cached_vbase_) {
    return cached_pbase_ + HugePageOffset(virt);
  }
  auto it = entries_.find(vbase);
  if (it == entries_.end()) {
    return NotFoundError("TLB miss (page not pinned)");
  }
  cached_vbase_ = vbase;
  cached_pbase_ = it->second;
  return cached_pbase_ + HugePageOffset(virt);
}

Status Tlb::ResolveInto(VirtAddr virt, uint64_t length, SegmentVec& out) const {
  uint64_t done = 0;
  while (done < length) {
    const VirtAddr cur = virt + done;
    Result<PhysAddr> phys = Translate(cur);
    if (!phys.ok()) {
      return phys.status();
    }
    const uint64_t in_page = kHugePageSize - HugePageOffset(cur);
    const uint64_t chunk = std::min(length - done, in_page);
    if (!out.empty() && out.back().phys + out.back().length == *phys) {
      out.back().length += chunk;  // physically contiguous: merge
    } else {
      if (!out.empty()) {
        ++boundary_splits_;
      }
      out.push_back(DmaSegment{*phys, chunk});
    }
    done += chunk;
  }
  return Status::Ok();
}

Result<std::vector<DmaSegment>> Tlb::Resolve(VirtAddr virt, uint64_t length) const {
  SegmentVec segments;
  STROM_RETURN_IF_ERROR(ResolveInto(virt, length, segments));
  return std::vector<DmaSegment>(segments.begin(), segments.end());
}

}  // namespace strom
