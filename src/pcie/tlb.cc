#include "src/pcie/tlb.h"

#include <algorithm>

namespace strom {

Status Tlb::Map(VirtAddr virt, PhysAddr phys) {
  if (HugePageOffset(virt) != 0 || HugePageOffset(phys) != 0) {
    return InvalidArgumentError("TLB mappings must be 2MiB aligned");
  }
  if (entries_.size() >= capacity_ && entries_.find(virt) == entries_.end()) {
    return ResourceExhaustedError("TLB full");
  }
  entries_[virt] = phys;
  return Status::Ok();
}

Result<PhysAddr> Tlb::Translate(VirtAddr virt) const {
  ++lookups_;
  auto it = entries_.find(HugePageBase(virt));
  if (it == entries_.end()) {
    return NotFoundError("TLB miss (page not pinned)");
  }
  return it->second + HugePageOffset(virt);
}

Result<std::vector<DmaSegment>> Tlb::Resolve(VirtAddr virt, uint64_t length) const {
  std::vector<DmaSegment> segments;
  uint64_t done = 0;
  while (done < length) {
    const VirtAddr cur = virt + done;
    Result<PhysAddr> phys = Translate(cur);
    if (!phys.ok()) {
      return phys.status();
    }
    const uint64_t in_page = kHugePageSize - HugePageOffset(cur);
    const uint64_t chunk = std::min(length - done, in_page);
    if (!segments.empty() &&
        segments.back().phys + segments.back().length == *phys) {
      segments.back().length += chunk;  // physically contiguous: merge
    } else {
      if (!segments.empty()) {
        ++boundary_splits_;
      }
      segments.push_back(DmaSegment{*phys, chunk});
    }
    done += chunk;
  }
  if (segments.empty()) {
    segments.push_back(DmaSegment{0, 0});
    segments.clear();
  }
  return segments;
}

}  // namespace strom
