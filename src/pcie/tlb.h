// NIC-side Translation Lookaside Buffer (paper §4.2): maps 2 MiB virtual huge
// pages to 48-bit physical addresses, holds up to 16,384 entries (32 GiB),
// is populated once by the driver (no page misses), and splits commands that
// cross huge-page boundaries into physically contiguous segments.
#ifndef SRC_PCIE_TLB_H_
#define SRC_PCIE_TLB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/pcie/host_memory.h"

namespace strom {

struct DmaSegment {
  PhysAddr phys = 0;
  uint64_t length = 0;
};

class Tlb {
 public:
  static constexpr size_t kDefaultCapacity = 16384;  // 32 GiB of 2 MiB pages

  explicit Tlb(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  // Installs a mapping; both addresses must be 2 MiB aligned.
  Status Map(VirtAddr virt, PhysAddr phys);

  Result<PhysAddr> Translate(VirtAddr virt) const;

  // Splits [virt, virt+length) into segments, none crossing a page boundary
  // (adjacent physically contiguous pages are merged, as real DMA bridges
  // do after translation).
  Result<std::vector<DmaSegment>> Resolve(VirtAddr virt, uint64_t length) const;

  size_t entry_count() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t boundary_splits() const { return boundary_splits_; }

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, PhysAddr> entries_;  // va page -> pa page
  mutable uint64_t lookups_ = 0;
  mutable uint64_t boundary_splits_ = 0;
};

}  // namespace strom

#endif  // SRC_PCIE_TLB_H_
