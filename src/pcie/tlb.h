// NIC-side Translation Lookaside Buffer (paper §4.2): maps 2 MiB virtual huge
// pages to 48-bit physical addresses, holds up to 16,384 entries (32 GiB),
// is populated once by the driver (no page misses), and splits commands that
// cross huge-page boundaries into physically contiguous segments.
#ifndef SRC_PCIE_TLB_H_
#define SRC_PCIE_TLB_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/pcie/host_memory.h"

namespace strom {

struct DmaSegment {
  PhysAddr phys = 0;
  uint64_t length = 0;
};

// Segment list with inline storage: after merging, DMA commands nearly always
// resolve to one or two segments, so the per-command std::vector allocation
// the hot path used to pay is gone. Spills to the heap past kInline.
class SegmentVec {
 public:
  static constexpr size_t kInline = 4;

  void push_back(const DmaSegment& seg) {
    if (spill_.empty() && size_ < kInline) {
      inline_[size_++] = seg;
      return;
    }
    if (spill_.empty()) {
      spill_.assign(inline_.begin(), inline_.begin() + size_);
    }
    spill_.push_back(seg);
    size_ = spill_.size();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  DmaSegment& back() { return data()[size_ - 1]; }
  const DmaSegment& operator[](size_t i) const { return data()[i]; }
  const DmaSegment* begin() const { return data(); }
  const DmaSegment* end() const { return data() + size_; }

 private:
  DmaSegment* data() { return spill_.empty() ? inline_.data() : spill_.data(); }
  const DmaSegment* data() const {
    return spill_.empty() ? inline_.data() : spill_.data();
  }

  std::array<DmaSegment, kInline> inline_;
  std::vector<DmaSegment> spill_;
  size_t size_ = 0;
};

class Tlb {
 public:
  static constexpr size_t kDefaultCapacity = 16384;  // 32 GiB of 2 MiB pages

  explicit Tlb(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  // Installs a mapping; both addresses must be 2 MiB aligned.
  Status Map(VirtAddr virt, PhysAddr phys);

  Result<PhysAddr> Translate(VirtAddr virt) const;

  // Splits [virt, virt+length) into segments, none crossing a page boundary
  // (adjacent physically contiguous pages are merged, as real DMA bridges
  // do after translation). Appends to `out` without clearing it.
  Status ResolveInto(VirtAddr virt, uint64_t length, SegmentVec& out) const;
  Result<std::vector<DmaSegment>> Resolve(VirtAddr virt, uint64_t length) const;

  size_t entry_count() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t boundary_splits() const { return boundary_splits_; }

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, PhysAddr> entries_;  // va page -> pa page
  mutable uint64_t lookups_ = 0;
  mutable uint64_t boundary_splits_ = 0;
  // One-entry translation cache (the real TLB's L0): polls and sequential DMA
  // hit the same page repeatedly. Reset by Map, which may remap the page.
  mutable uint64_t cached_vbase_ = ~uint64_t{0};
  mutable PhysAddr cached_pbase_ = 0;
};

}  // namespace strom

#endif  // SRC_PCIE_TLB_H_
