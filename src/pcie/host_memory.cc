#include "src/pcie/host_memory.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace strom {

uint8_t* HostMemory::PageFor(PhysAddr addr, bool create) {
  const uint64_t base = HugePageBase(addr);
  auto it = pages_.find(base);
  if (it == pages_.end()) {
    if (!create) {
      return nullptr;
    }
    auto page = std::make_unique<uint8_t[]>(kHugePageSize);
    std::memset(page.get(), 0, kHugePageSize);
    it = pages_.emplace(base, std::move(page)).first;
  }
  return it->second.get();
}

const uint8_t* HostMemory::PageForRead(PhysAddr addr) const {
  auto it = pages_.find(HugePageBase(addr));
  return it == pages_.end() ? nullptr : it->second.get();
}

void HostMemory::Write(PhysAddr addr, ByteSpan data) {
  size_t done = 0;
  while (done < data.size()) {
    const PhysAddr cur = addr + done;
    const uint64_t off = HugePageOffset(cur);
    const size_t chunk = std::min<size_t>(data.size() - done, kHugePageSize - off);
    uint8_t* page = PageFor(cur, /*create=*/true);
    std::memcpy(page + off, data.data() + done, chunk);
    done += chunk;
  }
}

void HostMemory::Read(PhysAddr addr, MutableByteSpan out) const {
  size_t done = 0;
  while (done < out.size()) {
    const PhysAddr cur = addr + done;
    const uint64_t off = HugePageOffset(cur);
    const size_t chunk = std::min<size_t>(out.size() - done, kHugePageSize - off);
    const uint8_t* page = PageForRead(cur);
    if (page == nullptr) {
      std::memset(out.data() + done, 0, chunk);  // untouched memory reads as zero
    } else {
      std::memcpy(out.data() + done, page + off, chunk);
    }
    done += chunk;
  }
}

ByteBuffer HostMemory::ReadBuffer(PhysAddr addr, size_t len) const {
  ByteBuffer out(len);
  Read(addr, MutableByteSpan(out.data(), out.size()));
  return out;
}

void HostMemory::WriteU64(PhysAddr addr, uint64_t value) {
  uint8_t buf[8];
  StoreLe64(buf, value);
  Write(addr, ByteSpan(buf, 8));
}

uint64_t HostMemory::ReadU64(PhysAddr addr) const {
  uint8_t buf[8];
  Read(addr, MutableByteSpan(buf, 8));
  return LoadLe64(buf);
}

void HostMemory::Fill(PhysAddr addr, size_t len, uint8_t value) {
  size_t done = 0;
  while (done < len) {
    const PhysAddr cur = addr + done;
    const uint64_t off = HugePageOffset(cur);
    const size_t chunk = std::min<size_t>(len - done, kHugePageSize - off);
    uint8_t* page = PageFor(cur, /*create=*/true);
    std::memset(page + off, value, chunk);
    done += chunk;
  }
}

PhysAddr HostMemory::AllocPage() {
  // Stride of 2 pages leaves an unmapped hole after every page, so accesses
  // that run past a page without a TLB-split fault on zeroed memory in tests.
  const PhysAddr base = next_page_index_ * kHugePageSize * 2;
  ++next_page_index_;
  (void)PageFor(base, /*create=*/true);
  return base;
}

}  // namespace strom
