#include "src/pcie/host_memory.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace strom {

uint8_t* HostMemory::PageFor(PhysAddr addr, bool create) {
  const uint64_t base = HugePageBase(addr);
  if (base == cached_base_) {
    return cached_page_;
  }
  auto it = pages_.find(base);
  if (it == pages_.end()) {
    if (!create) {
      return nullptr;
    }
    auto page = std::make_unique<uint8_t[]>(kHugePageSize);
    std::memset(page.get(), 0, kHugePageSize);
    it = pages_.emplace(base, std::move(page)).first;
  }
  cached_base_ = base;
  cached_page_ = it->second.get();
  return cached_page_;
}

const uint8_t* HostMemory::PageForRead(PhysAddr addr) const {
  const uint64_t base = HugePageBase(addr);
  if (base == cached_base_) {
    return cached_page_;
  }
  auto it = pages_.find(base);
  if (it == pages_.end()) {
    return nullptr;
  }
  cached_base_ = base;
  cached_page_ = it->second.get();
  return cached_page_;
}

const uint8_t* HostMemory::ZeroPage() {
  static const std::unique_ptr<uint8_t[]> zero = [] {
    auto page = std::make_unique<uint8_t[]>(kHugePageSize);
    std::memset(page.get(), 0, kHugePageSize);
    return page;
  }();
  return zero.get();
}

void HostMemory::Write(PhysAddr addr, ByteSpan data) {
  VisitWrite(addr, data.size(), [&data](size_t done, MutableByteSpan dst) {
    std::memcpy(dst.data(), data.data() + done, dst.size());
  });
}

void HostMemory::Read(PhysAddr addr, MutableByteSpan out) const {
  VisitRead(addr, out.size(), [&out](size_t done, ByteSpan src) {
    std::memcpy(out.data() + done, src.data(), src.size());
  });
}

void HostMemory::WriteU64(PhysAddr addr, uint64_t value) {
  uint8_t buf[8];
  StoreLe64(buf, value);
  Write(addr, ByteSpan(buf, 8));
}

uint64_t HostMemory::ReadU64(PhysAddr addr) const {
  // Poll loops spin on this: for the common page-interior word, skip the
  // visitor machinery and load straight from the page.
  const uint64_t off = HugePageOffset(addr);
  if (off + 8 <= kHugePageSize) {
    const uint8_t* page = PageForRead(addr);
    static constexpr uint8_t kZeros[8] = {};
    return LoadLe64(page == nullptr ? kZeros : page + off);
  }
  uint8_t buf[8];
  Read(addr, MutableByteSpan(buf, 8));
  return LoadLe64(buf);
}

void HostMemory::Fill(PhysAddr addr, size_t len, uint8_t value) {
  VisitWrite(addr, len, [value](size_t, MutableByteSpan dst) {
    std::memset(dst.data(), value, dst.size());
  });
}

PhysAddr HostMemory::AllocPage() {
  // Stride of 2 pages leaves an unmapped hole after every page, so accesses
  // that run past a page without a TLB-split fault on zeroed memory in tests.
  const PhysAddr base = next_page_index_ * kHugePageSize * 2;
  ++next_page_index_;
  (void)PageFor(base, /*create=*/true);
  return base;
}

}  // namespace strom
