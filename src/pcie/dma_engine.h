// PCIe DMA engine model (paper §4.3: Xilinx XDMA with descriptor bypass).
// Two independent streaming channels — card-to-host (writes) and
// host-to-card (reads) — each a FIFO server with:
//   * completion latency      (PCIe round trip: ~1.5 us read, paper fn.7),
//   * bandwidth               (Gen3 x8 ~= 6:1 vs 10G, Gen3 x16 ~= 1:1 vs 100G),
//   * per-command overhead    (TLP/descriptor cost; this is what makes
//                              random-access kernels lose at 100 G, §7).
// Commands are translated through the TLB; page-boundary crossings split into
// multiple physical segments, each paying the per-command overhead.
#ifndef SRC_PCIE_DMA_ENGINE_H_
#define SRC_PCIE_DMA_ENGINE_H_

#include <functional>

#include "src/common/frame_buf.h"
#include "src/common/status.h"
#include "src/pcie/host_memory.h"
#include "src/pcie/tlb.h"
#include "src/sim/simulator.h"
#include "src/telemetry/telemetry.h"

namespace strom {

struct DmaConfig {
  uint64_t bandwidth_bps = 63'000'000'000ull;  // PCIe Gen3 x8 effective
  SimTime read_latency = Ns(700);              // command -> first data (one way up + back)
  SimTime write_latency = Ns(400);             // command -> data posted
  SimTime per_command_overhead = Ns(80);       // descriptor + TLP setup per segment
};

struct DmaCounters {
  uint64_t read_commands = 0;
  uint64_t write_commands = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t segment_splits = 0;
  uint64_t errors = 0;
};

class DmaEngine {
 public:
  using ReadCallback = std::function<void(Result<FrameBuf>)>;
  using WriteCallback = std::function<void(Status)>;
  // Consulted once per command at issue time; a non-OK status fails the
  // command (driven by FaultEngine — see src/faults/). The engine passes its
  // own clock so fault windows are evaluated on the issuing node's logical
  // process, not whichever simulator the hook's owner happens to hold.
  using FaultHook = std::function<Status(bool is_write, SimTime now)>;

  DmaEngine(Simulator& sim, HostMemory& memory, Tlb& tlb, DmaConfig config);

  // Registers the DMA track and counter gauges under `process` (e.g. "node0").
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  // Registers per-channel backlog probes (ns until the channel goes idle)
  // with the telemetry sampler.
  void AttachSampler(Telemetry* telemetry, const std::string& process);

  // Fetches `length` bytes at virtual address `virt`; the callback runs when
  // the last data beat arrives on the card.
  void Read(VirtAddr virt, uint64_t length, ReadCallback done, TraceContext trace = {});

  // Posts `data` to virtual address `virt`; the callback runs when the write
  // has been accepted by the host memory system. The data is shared, not
  // copied — on the RX path it is a sub-span of the received wire frame.
  // Returns non-OK iff an injected fault rejects the command at issue time
  // (nothing is written and `done` never runs); translation errors are still
  // delivered asynchronously through `done`, as on real hardware.
  Status Write(VirtAddr virt, FrameBuf data, WriteCallback done, TraceContext trace = {});

  // Installs a per-command fault hook (at most one; driven by FaultEngine).
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Opts this engine into crash semantics: completions capture the crash
  // epoch and become no-ops if a Crash() intervened. The guarded captures
  // exceed SmallCallback's inline buffer, so this stays off unless a crash
  // plan actually targets the node — the clean-run hot path is unchanged.
  void EnableCrashFaults() { crash_enabled_ = true; }

  // Kills everything in flight: commands already issued never deliver their
  // completion (the pooled data buffer is released when the dead event pops,
  // so nothing leaks), and both channels are idle again for post-restart
  // traffic. Host memory itself is NOT touched — it models durable state.
  void Crash();

  const DmaCounters& counters() const { return counters_; }
  const DmaConfig& config() const { return config_; }

  // Time at which the given channel would accept a new command now.
  SimTime ReadChannelIdleAt() const { return read_busy_until_; }
  SimTime WriteChannelIdleAt() const { return write_busy_until_; }

 private:
  SimTime ServiceTime(const SegmentVec& segments) const;
  void CompleteRead(VirtAddr virt, uint64_t length, const ReadCallback& done);
  void CompleteWrite(VirtAddr virt, const FrameBuf& data, const WriteCallback& done);

  Simulator& sim_;
  HostMemory& memory_;
  Tlb& tlb_;
  DmaConfig config_;
  DmaCounters counters_;
  FaultHook fault_hook_;
  Tracer* tracer_ = nullptr;
  TrackId track_ = kInvalidTrack;
  SimTime read_busy_until_ = 0;
  SimTime write_busy_until_ = 0;
  bool crash_enabled_ = false;
  uint32_t crash_epoch_ = 0;
  // PCIe ordering: a read request pushes ahead posted writes — its data must
  // reflect every write posted before it. Tracks when the latest posted
  // write becomes visible in host memory.
  SimTime write_visible_at_ = 0;
};

}  // namespace strom

#endif  // SRC_PCIE_DMA_ENGINE_H_
