// Simulated host DRAM, physically addressed, organized as sparse 2 MiB huge
// pages (the unit the driver pins and the TLB maps, paper §4.2). Pages are
// materialized on first touch so multi-GiB address spaces cost only what is
// actually written.
#ifndef SRC_PCIE_HOST_MEMORY_H_
#define SRC_PCIE_HOST_MEMORY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"

namespace strom {

inline constexpr uint64_t kHugePageSize = 2ull * 1024 * 1024;
inline constexpr uint64_t kHugePageMask = kHugePageSize - 1;

inline constexpr uint64_t HugePageBase(uint64_t addr) { return addr & ~kHugePageMask; }
inline constexpr uint64_t HugePageOffset(uint64_t addr) { return addr & kHugePageMask; }

class HostMemory {
 public:
  HostMemory() = default;
  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  void Write(PhysAddr addr, ByteSpan data);
  void Read(PhysAddr addr, MutableByteSpan out) const;
  ByteBuffer ReadBuffer(PhysAddr addr, size_t len) const;

  // Convenience scalar accessors (little-endian, matching x86 host layout).
  void WriteU64(PhysAddr addr, uint64_t value);
  uint64_t ReadU64(PhysAddr addr) const;

  // Fills a range with a byte value.
  void Fill(PhysAddr addr, size_t len, uint8_t value);

  size_t materialized_pages() const { return pages_.size(); }

  // Allocates a fresh, zeroed physical huge page and returns its base address.
  // Page addresses are deliberately non-consecutive (stride > page size) so
  // that code assuming physical contiguity across pages fails loudly; the TLB
  // must be used to translate (paper §4.2: "physically they might not be
  // contiguous").
  PhysAddr AllocPage();

 private:
  uint8_t* PageFor(PhysAddr addr, bool create);
  const uint8_t* PageForRead(PhysAddr addr) const;

  std::map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
  uint64_t next_page_index_ = 1;
};

}  // namespace strom

#endif  // SRC_PCIE_HOST_MEMORY_H_
