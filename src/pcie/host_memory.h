// Simulated host DRAM, physically addressed, organized as sparse 2 MiB huge
// pages (the unit the driver pins and the TLB maps, paper §4.2). Pages are
// materialized on first touch so multi-GiB address spaces cost only what is
// actually written.
#ifndef SRC_PCIE_HOST_MEMORY_H_
#define SRC_PCIE_HOST_MEMORY_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/types.h"

namespace strom {

inline constexpr uint64_t kHugePageSize = 2ull * 1024 * 1024;
inline constexpr uint64_t kHugePageMask = kHugePageSize - 1;

inline constexpr uint64_t HugePageBase(uint64_t addr) { return addr & ~kHugePageMask; }
inline constexpr uint64_t HugePageOffset(uint64_t addr) { return addr & kHugePageMask; }

class HostMemory {
 public:
  HostMemory() = default;
  HostMemory(const HostMemory&) = delete;
  HostMemory& operator=(const HostMemory&) = delete;

  void Write(PhysAddr addr, ByteSpan data);
  void Read(PhysAddr addr, MutableByteSpan out) const;

  // Scatter/gather span iteration: visits the range [addr, addr + len) as one
  // ByteSpan per touched page, in address order, without materializing a
  // buffer. Consumers (DmaEngine, StRoM kernels) read the pages in place.
  // Unmapped memory reads as zero (the visitor sees a span of a shared zero
  // page). visit(offset_in_range, span_of_bytes).
  template <typename Fn>
  void VisitRead(PhysAddr addr, size_t len, Fn&& visit) const {
    size_t done = 0;
    while (done < len) {
      const PhysAddr cur = addr + done;
      const uint64_t off = HugePageOffset(cur);
      const size_t chunk = std::min<size_t>(len - done, kHugePageSize - off);
      const uint8_t* page = PageForRead(cur);
      visit(done, ByteSpan(page == nullptr ? ZeroPage() : page + off, chunk));
      done += chunk;
    }
  }

  // Write-side counterpart: visits the same page decomposition with mutable
  // spans, materializing pages on first touch. visit must fill every byte of
  // the span it is handed.
  template <typename Fn>
  void VisitWrite(PhysAddr addr, size_t len, Fn&& visit) {
    size_t done = 0;
    while (done < len) {
      const PhysAddr cur = addr + done;
      const uint64_t off = HugePageOffset(cur);
      const size_t chunk = std::min<size_t>(len - done, kHugePageSize - off);
      uint8_t* page = PageFor(cur, /*create=*/true);
      visit(done, MutableByteSpan(page + off, chunk));
      done += chunk;
    }
  }

  // Convenience scalar accessors (little-endian, matching x86 host layout).
  void WriteU64(PhysAddr addr, uint64_t value);
  uint64_t ReadU64(PhysAddr addr) const;

  // Fills a range with a byte value.
  void Fill(PhysAddr addr, size_t len, uint8_t value);

  size_t materialized_pages() const { return pages_.size(); }

  // Allocates a fresh, zeroed physical huge page and returns its base address.
  // Page addresses are deliberately non-consecutive (stride > page size) so
  // that code assuming physical contiguity across pages fails loudly; the TLB
  // must be used to translate (paper §4.2: "physically they might not be
  // contiguous").
  PhysAddr AllocPage();

 private:
  uint8_t* PageFor(PhysAddr addr, bool create);
  const uint8_t* PageForRead(PhysAddr addr) const;
  // Shared all-zero page backing reads of unmapped memory.
  static const uint8_t* ZeroPage();

  std::map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
  uint64_t next_page_index_ = 1;
  // One-entry lookup cache: DMA bursts and poll loops hammer the same page,
  // and the std::map find dominated the access cost. Map nodes are stable
  // under insertion (and pages are never erased), so the cached pointer can
  // not dangle. Only mapped pages are cached — a miss stays a map lookup.
  mutable uint64_t cached_base_ = ~uint64_t{0};
  mutable uint8_t* cached_page_ = nullptr;
};

}  // namespace strom

#endif  // SRC_PCIE_HOST_MEMORY_H_
