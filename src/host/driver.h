// RoceDriver: the user-space API of our kernel driver (paper §4.3/§5.3).
// It pins hugepage-backed buffers (populating the NIC TLB), exposes the
// verbs — Write/Read plus the StRoM verbs postRpc/postRpcWrite — and
// provides the memory-polling primitive the paper's benchmarks use for
// completion detection. Coroutine wrappers make multi-step remote
// interactions read as straight-line code in examples and benches.
#ifndef SRC_HOST_DRIVER_H_
#define SRC_HOST_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/host/controller.h"
#include "src/pcie/host_memory.h"
#include "src/pcie/tlb.h"
#include "src/sim/task.h"

namespace strom {

// A pinned, TLB-mapped registration returned by AllocBuffer.
struct RdmaBuffer {
  VirtAddr addr = 0;
  uint64_t size = 0;
};

struct DriverConfig {
  // Granularity at which a spinning host thread re-checks a polled cache
  // line (load + compare on an invalidated line).
  SimTime poll_interval = Ns(50);
};

class RoceDriver {
 public:
  RoceDriver(Simulator& sim, HostMemory& memory, Tlb& tlb, Controller& controller,
             DriverConfig config = {});

  // Registers the verbs track. Once attached, every posted verb draws a
  // TraceContext from the tracer (subject to sampling) and records a
  // whole-verb span from post to network completion.
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  // --- memory management ----------------------------------------------------
  // Allocates `size` bytes of pinned hugepage memory, maps every page in the
  // NIC TLB, and returns the virtual registration.
  Result<RdmaBuffer> AllocBuffer(uint64_t size);

  // Host-CPU access to pinned memory (zero simulated cost; the CPU model
  // charges compute time separately where it matters).
  Status WriteHost(VirtAddr addr, ByteSpan data);
  Result<ByteBuffer> ReadHost(VirtAddr addr, uint64_t len) const;
  uint64_t ReadHostU64(VirtAddr addr) const;
  void WriteHostU64(VirtAddr addr, uint64_t value);
  void FillHost(VirtAddr addr, uint64_t len, uint8_t value);

  // --- verbs (asynchronous, callback on network completion) ------------------
  void PostWrite(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length,
                 std::function<void(Status)> done = nullptr);
  void PostRead(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length,
                std::function<void(Status)> done = nullptr);
  // Batched write submission: one doorbell per up-to-max_batch requests
  // (§7's command-batching remedy for the message-rate ceiling). `writes`
  // are (local, remote, length) triples on one QP.
  struct BatchWrite {
    VirtAddr local = 0;
    VirtAddr remote = 0;
    uint32_t length = 0;
    std::function<void(Status)> done;
  };
  void PostWriteBatch(Qpn qpn, std::vector<BatchWrite> writes);

  // postRpc (paper Listing 5): op-code + parameter block (<= one MTU).
  void PostRpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params,
               std::function<void(Status)> done = nullptr);
  // postRpcWrite: attach payload from pinned memory to an RPC.
  void PostRpcWrite(uint32_t rpc_opcode, Qpn qpn, VirtAddr origin, uint32_t length,
                    std::function<void(Status)> done = nullptr);
  // Local StRoM invocation on this node's own NIC.
  void PostLocalRpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params);

  // Reads the NIC's status/performance registers, charging the MMIO
  // round-trip to the calling coroutine.
  ValueTask<RoceCounters> QueryNicCounters();

  // --- error handling --------------------------------------------------------
  // Application callback for QPs the NIC moves to the Error state. All
  // flushed WRs complete with an error status before the handler fires; the
  // handler should schedule recovery (ResetQp + peer resync), not reconnect
  // inline.
  void SetQpErrorHandler(RoceStack::QpErrorHandler handler) {
    controller_.SetQpErrorHandler(std::move(handler));
  }
  // Resets an errored QP back to a fresh state (PSN resync). The peer must
  // reset too before traffic resumes.
  Status ResetQp(Qpn qpn) { return controller_.ResetQp(qpn); }

  // --- coroutine wrappers ----------------------------------------------------
  ValueTask<Status> Write(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length);
  ValueTask<Status> Read(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length);
  ValueTask<Status> Rpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params);
  ValueTask<Status> RpcWrite(uint32_t rpc_opcode, Qpn qpn, VirtAddr origin, uint32_t length);

  // Spins on the 8-byte word at `addr` until it differs from `sentinel`;
  // returns the observed value (the paper's ping-pong completion detection).
  ValueTask<uint64_t> PollU64(VirtAddr addr, uint64_t sentinel);

  Simulator& sim() { return sim_; }
  Controller& controller() { return controller_; }

 private:
  WorkRequest MakeRequest(WorkRequest::Kind kind, Qpn qpn, VirtAddr local, VirtAddr remote,
                          uint32_t length, std::function<void(Status)> done);
  // Draws a trace context for `wr` and, when sampled, wraps on_complete to
  // record the whole-verb span on completion.
  void BeginTrace(WorkRequest& wr, const char* verb);

  Simulator& sim_;
  HostMemory& memory_;
  Tlb& tlb_;
  Controller& controller_;
  DriverConfig config_;
  VirtAddr next_va_ = kHugePageSize;  // VA 0 reserved as "null"
  uint64_t next_wr_id_ = 1;
  Tracer* tracer_ = nullptr;
  TrackId track_ = kInvalidTrack;
};

}  // namespace strom

#endif  // SRC_HOST_DRIVER_H_
