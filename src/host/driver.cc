#include "src/host/driver.h"

#include <utility>

#include "src/common/logging.h"

namespace strom {

RoceDriver::RoceDriver(Simulator& sim, HostMemory& memory, Tlb& tlb, Controller& controller,
                       DriverConfig config)
    : sim_(sim), memory_(memory), tlb_(tlb), controller_(controller), config_(config) {}

void RoceDriver::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  tracer_ = &telemetry->tracer;
  track_ = tracer_->RegisterTrack(process, "verbs");
}

void RoceDriver::BeginTrace(WorkRequest& wr, const char* verb) {
  if (tracer_ == nullptr) {
    return;
  }
  wr.trace = tracer_->StartTrace();
  if (!wr.trace.sampled()) {
    return;
  }
  const SimTime posted = sim_.now();
  wr.on_complete = [this, trace = wr.trace, verb, posted,
                    inner = std::move(wr.on_complete)](Status st) {
    tracer_->Span(trace, track_, verb, posted, sim_.now());
    if (inner) {
      inner(st);
    }
  };
}

Result<RdmaBuffer> RoceDriver::AllocBuffer(uint64_t size) {
  if (size == 0) {
    return InvalidArgumentError("zero-size buffer");
  }
  const uint64_t pages = (size + kHugePageSize - 1) / kHugePageSize;
  const VirtAddr base = next_va_;
  for (uint64_t i = 0; i < pages; ++i) {
    const PhysAddr phys = memory_.AllocPage();
    STROM_RETURN_IF_ERROR(tlb_.Map(base + i * kHugePageSize, phys));
  }
  next_va_ = base + pages * kHugePageSize;
  return RdmaBuffer{base, size};
}

Status RoceDriver::WriteHost(VirtAddr addr, ByteSpan data) {
  uint64_t done = 0;
  while (done < data.size()) {
    Result<PhysAddr> phys = tlb_.Translate(addr + done);
    if (!phys.ok()) {
      return phys.status();
    }
    const uint64_t chunk =
        std::min<uint64_t>(data.size() - done, kHugePageSize - HugePageOffset(addr + done));
    memory_.Write(*phys, data.subspan(done, chunk));
    done += chunk;
  }
  return Status::Ok();
}

Result<ByteBuffer> RoceDriver::ReadHost(VirtAddr addr, uint64_t len) const {
  ByteBuffer out(len);
  uint64_t done = 0;
  while (done < len) {
    Result<PhysAddr> phys = tlb_.Translate(addr + done);
    if (!phys.ok()) {
      return phys.status();
    }
    const uint64_t chunk = std::min<uint64_t>(len - done, kHugePageSize - HugePageOffset(addr + done));
    memory_.Read(*phys, MutableByteSpan(out.data() + done, chunk));
    done += chunk;
  }
  return out;
}

uint64_t RoceDriver::ReadHostU64(VirtAddr addr) const {
  // Hot polling path (PollU64 spins on this): one translate, one in-place
  // page read, no buffer. Words straddling a page take the general path.
  if (HugePageOffset(addr) + 8 <= kHugePageSize) {
    Result<PhysAddr> phys = tlb_.Translate(addr);
    STROM_CHECK(phys.ok()) << phys.status();
    return memory_.ReadU64(*phys);
  }
  Result<ByteBuffer> data = ReadHost(addr, 8);
  STROM_CHECK(data.ok()) << data.status();
  return LoadLe64(data->data());
}

void RoceDriver::WriteHostU64(VirtAddr addr, uint64_t value) {
  uint8_t buf[8];
  StoreLe64(buf, value);
  Status st = WriteHost(addr, ByteSpan(buf, 8));
  STROM_CHECK(st.ok()) << st;
}

void RoceDriver::FillHost(VirtAddr addr, uint64_t len, uint8_t value) {
  ByteBuffer chunk(std::min<uint64_t>(len, kHugePageSize), value);
  uint64_t done = 0;
  while (done < len) {
    const uint64_t n = std::min<uint64_t>(len - done, chunk.size());
    Status st = WriteHost(addr + done, ByteSpan(chunk.data(), n));
    STROM_CHECK(st.ok()) << st;
    done += n;
  }
}

WorkRequest RoceDriver::MakeRequest(WorkRequest::Kind kind, Qpn qpn, VirtAddr local,
                                    VirtAddr remote, uint32_t length,
                                    std::function<void(Status)> done) {
  WorkRequest wr;
  wr.kind = kind;
  wr.qpn = qpn;
  wr.local_addr = local;
  wr.remote_addr = remote;
  wr.length = length;
  wr.wr_id = next_wr_id_++;
  wr.on_complete = std::move(done);
  return wr;
}

void RoceDriver::PostWrite(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length,
                           std::function<void(Status)> done) {
  WorkRequest wr =
      MakeRequest(WorkRequest::Kind::kWrite, qpn, local, remote, length, std::move(done));
  BeginTrace(wr, "write");
  controller_.PostWork(std::move(wr));
}

void RoceDriver::PostRead(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length,
                          std::function<void(Status)> done) {
  WorkRequest wr =
      MakeRequest(WorkRequest::Kind::kRead, qpn, local, remote, length, std::move(done));
  BeginTrace(wr, "read");
  controller_.PostWork(std::move(wr));
}

void RoceDriver::PostWriteBatch(Qpn qpn, std::vector<BatchWrite> writes) {
  std::vector<WorkRequest> batch;
  batch.reserve(writes.size());
  for (BatchWrite& w : writes) {
    WorkRequest wr = MakeRequest(WorkRequest::Kind::kWrite, qpn, w.local, w.remote, w.length,
                                 std::move(w.done));
    BeginTrace(wr, "write");
    batch.push_back(std::move(wr));
  }
  controller_.PostWorkBatch(std::move(batch));
}

void RoceDriver::PostRpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params,
                         std::function<void(Status)> done) {
  WorkRequest wr = MakeRequest(WorkRequest::Kind::kRpc, qpn, 0, rpc_opcode,
                               static_cast<uint32_t>(params.size()), std::move(done));
  wr.inline_data = std::move(params);
  BeginTrace(wr, "rpc");
  controller_.PostWork(std::move(wr));
}

void RoceDriver::PostRpcWrite(uint32_t rpc_opcode, Qpn qpn, VirtAddr origin, uint32_t length,
                              std::function<void(Status)> done) {
  WorkRequest wr = MakeRequest(WorkRequest::Kind::kRpcWrite, qpn, origin, rpc_opcode, length,
                               std::move(done));
  BeginTrace(wr, "rpc_write");
  controller_.PostWork(std::move(wr));
}

void RoceDriver::PostLocalRpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params) {
  TraceContext trace;
  if (tracer_ != nullptr) {
    trace = tracer_->StartTrace();
    if (trace.sampled()) {
      tracer_->Instant(trace, track_, "local_rpc", sim_.now());
    }
  }
  controller_.PostLocalRpc(rpc_opcode, qpn, std::move(params), trace);
}

ValueTask<RoceCounters> RoceDriver::QueryNicCounters() {
  co_await Delay(sim_, controller_.counter_read_cost());
  co_return controller_.ReadNicCounters();
}

namespace {

// Bridges a callback-style post into an awaitable completion.
struct CompletionState {
  SimEvent event;
  Status status;
  explicit CompletionState(Simulator& sim) : event(sim) {}
};

}  // namespace

ValueTask<Status> RoceDriver::Write(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length) {
  auto state = std::make_shared<CompletionState>(sim_);
  PostWrite(qpn, local, remote, length, [state](Status st) {
    state->status = st;
    state->event.Trigger();
  });
  co_await state->event.Wait();
  co_return state->status;
}

ValueTask<Status> RoceDriver::Read(Qpn qpn, VirtAddr local, VirtAddr remote, uint32_t length) {
  auto state = std::make_shared<CompletionState>(sim_);
  PostRead(qpn, local, remote, length, [state](Status st) {
    state->status = st;
    state->event.Trigger();
  });
  co_await state->event.Wait();
  co_return state->status;
}

ValueTask<Status> RoceDriver::Rpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params) {
  auto state = std::make_shared<CompletionState>(sim_);
  PostRpc(rpc_opcode, qpn, std::move(params), [state](Status st) {
    state->status = st;
    state->event.Trigger();
  });
  co_await state->event.Wait();
  co_return state->status;
}

ValueTask<Status> RoceDriver::RpcWrite(uint32_t rpc_opcode, Qpn qpn, VirtAddr origin,
                                       uint32_t length) {
  auto state = std::make_shared<CompletionState>(sim_);
  PostRpcWrite(rpc_opcode, qpn, origin, length, [state](Status st) {
    state->status = st;
    state->event.Trigger();
  });
  co_await state->event.Wait();
  co_return state->status;
}

ValueTask<uint64_t> RoceDriver::PollU64(VirtAddr addr, uint64_t sentinel) {
  while (true) {
    const uint64_t value = ReadHostU64(addr);
    if (value != sentinel) {
      co_return value;
    }
    co_await Delay(sim_, config_.poll_interval);
  }
}

}  // namespace strom
