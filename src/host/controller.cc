#include "src/host/controller.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace strom {

Controller::Controller(Simulator& sim, RoceStack& stack, StromEngine* engine,
                       ControllerConfig config)
    : sim_(sim), stack_(stack), engine_(engine), config_(config) {}

void Controller::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  tracer_ = &telemetry->tracer;
  track_ = tracer_->RegisterTrack(process, "host");
  telemetry->metrics.AddGauge(process + ".host.commands_issued",
                              [this] { return double(commands_issued_); });
}

SimTime Controller::ClaimIssueSlot() {
  const SimTime slot = std::max(sim_.now(), next_issue_);
  next_issue_ = slot + config_.cmd_issue_interval;
  ++commands_issued_;
  return slot;
}

SimTime Controller::PostWork(WorkRequest wr) {
  const SimTime slot = ClaimIssueSlot();
  if (wr.trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(wr.trace, track_, "cmd.issue", slot, slot + config_.mmio_latency);
  }
  sim_.ScheduleAt(slot + config_.mmio_latency, [this, w = std::move(wr)]() mutable {
    Status st = stack_.PostRequest(std::move(w));
    if (!st.ok()) {
      STROM_LOG(kWarning) << "NIC rejected work request: " << st;
    }
  });
  return slot + config_.cmd_issue_interval;
}

RoceCounters Controller::ReadNicCounters() { return stack_.counters(); }

SimTime Controller::PostWorkBatch(std::vector<WorkRequest> batch) {
  SimTime done = sim_.now();
  size_t offset = 0;
  while (offset < batch.size()) {
    const size_t n = std::min<size_t>(config_.max_batch, batch.size() - offset);
    const SimTime slot = ClaimIssueSlot();  // one doorbell store per block
    commands_issued_ += n - 1;              // ClaimIssueSlot counted one
    std::vector<WorkRequest> block(std::make_move_iterator(batch.begin() + offset),
                                   std::make_move_iterator(batch.begin() + offset + n));
    if (tracer_ != nullptr) {
      for (const WorkRequest& wr : block) {
        if (wr.trace.sampled()) {
          tracer_->Span(wr.trace, track_, "cmd.issue", slot,
                        slot + config_.mmio_latency + config_.wqe_fetch_latency);
        }
      }
    }
    sim_.ScheduleAt(slot + config_.mmio_latency + config_.wqe_fetch_latency,
                    [this, b = std::move(block)]() mutable {
                      for (WorkRequest& wr : b) {
                        Status st = stack_.PostRequest(std::move(wr));
                        if (!st.ok()) {
                          STROM_LOG(kWarning) << "NIC rejected batched request: " << st;
                        }
                      }
                    });
    offset += n;
    done = slot + config_.cmd_issue_interval;
  }
  return done;
}

SimTime Controller::PostLocalRpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params,
                                 TraceContext trace) {
  const SimTime slot = ClaimIssueSlot();
  if (trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(trace, track_, "cmd.issue", slot, slot + config_.mmio_latency);
  }
  sim_.ScheduleAt(slot + config_.mmio_latency,
                  [this, rpc_opcode, qpn, p = std::move(params), trace]() mutable {
                    STROM_CHECK(engine_ != nullptr) << "no StRoM engine deployed";
                    Status st = engine_->InvokeLocal(rpc_opcode, qpn, std::move(p), trace);
                    if (!st.ok()) {
                      STROM_LOG(kWarning) << "local RPC rejected: " << st;
                    }
                  });
  return slot + config_.cmd_issue_interval;
}

}  // namespace strom
