// Controller (paper §4.3): the host maps /dev/roce control registers into
// user space and issues each NIC command with a single memory-mapped AVX2
// store. The message rate is therefore bounded by how fast the application
// can issue those stores and the I/O subsystem can deliver them over PCIe
// (paper §7: "the message rate is limited by the host issuing commands") —
// modeled by `cmd_issue_interval`. `mmio_latency` is the posted-write delay
// until the NIC decodes the command.
#ifndef SRC_HOST_CONTROLLER_H_
#define SRC_HOST_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "src/roce/stack.h"
#include "src/sim/simulator.h"
#include "src/strom/engine.h"

namespace strom {

struct ControllerConfig {
  SimTime cmd_issue_interval = Ns(140);
  SimTime mmio_latency = Ns(250);
  // Batched submission (§7: "Batching of application commands will eliminate
  // this limitation"): the application writes a block of work-queue entries
  // into pinned host memory and rings a single doorbell; the NIC fetches the
  // block over PCIe. One doorbell store per batch, plus the WQE fetch.
  uint32_t max_batch = 32;              // WQEs per doorbell
  SimTime wqe_fetch_latency = Ns(700);  // NIC DMA read of the WQE block
};

class Controller {
 public:
  Controller(Simulator& sim, RoceStack& stack, StromEngine* engine, ControllerConfig config);

  // Registers the host command-issue track and the commands_issued gauge.
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  // Issues a work request. Returns the simulated time at which the host
  // thread has retired the store and may continue (callers in coroutines
  // should `co_await Delay(sim, IssueCost())` style via the driver API).
  SimTime PostWork(WorkRequest wr);

  // Issues up to `max_batch` work requests per doorbell: the whole batch
  // costs one command-issue slot plus a WQE fetch, lifting the per-command
  // AVX2-store ceiling on message rate (§7).
  SimTime PostWorkBatch(std::vector<WorkRequest> batch);

  // Posts an RPC to the *local* NIC (paper §3.5, local StRoM invocation).
  SimTime PostLocalRpc(uint32_t rpc_opcode, Qpn qpn, ByteBuffer params,
                       TraceContext trace = {});

  // Reads the NIC's status/performance registers (paper §4.3: "the host can
  // also retrieve status and performance metrics"). Each batch of register
  // reads costs one non-posted MMIO round trip of host time.
  RoceCounters ReadNicCounters();
  SimTime counter_read_cost() const { return 2 * config_.mmio_latency; }

  // Installs the application's QP-error callback: fires when the NIC moves a
  // QP to the Error state (retry exhaustion, remote operational NAK, local
  // DMA failure). Errored completions for flushed WRs are delivered before
  // the handler runs.
  void SetQpErrorHandler(RoceStack::QpErrorHandler handler) {
    stack_.SetQpErrorHandler(std::move(handler));
  }

  // Resets an errored QP to a fresh state (new PSNs, empty queues). Both
  // ends must reset before traffic can resume.
  Status ResetQp(Qpn qpn) { return stack_.ResetQp(qpn); }

  uint64_t commands_issued() const { return commands_issued_; }
  const ControllerConfig& config() const { return config_; }

 private:
  // Serializes command stores at the issue rate; returns the slot time.
  SimTime ClaimIssueSlot();

  Simulator& sim_;
  RoceStack& stack_;
  StromEngine* engine_;
  ControllerConfig config_;
  SimTime next_issue_ = 0;
  uint64_t commands_issued_ = 0;
  Tracer* tracer_ = nullptr;
  TrackId track_ = kInvalidTrack;
};

}  // namespace strom

#endif  // SRC_HOST_CONTROLLER_H_
