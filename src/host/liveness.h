// Lease-based peer liveness (ISSUE 10 / DESIGN.md §14). Each host runs one
// LivenessMonitor owning a per-peer lease state machine on cancellable
// timers (src/sim/simulator.h timer slab):
//
//   kHealthy      the lease timer fires every `lease_interval`; a successful
//                 keepalive probe renews the lease in place (Reschedule — no
//                 allocation, no new handle).
//   kDead         the probe failed: the peer is declared dead (kPeerDead
//                 flight record) and the same timer re-arms as an
//                 exponential-backoff reconnect attempt.
//   kAbandoned    max_attempts exhausted (only with max_attempts > 0).
//
// The keepalive probe reads the peer's ground-truth alive flag through a
// caller-provided closure instead of exchanging probe packets. This keeps
// clean-run wire traffic byte-identical (liveness adds zero frames) while
// modeling the detection *latency* faithfully: a dead peer is noticed only
// when the lease next expires, and recovery waits out the backoff schedule.
// Cross-LP reads are safe because fault plans force serialized epochs.
//
// The reconnect closure performs the out-of-band fresh-PSN handshake
// (Fabric::ReconnectQp) once the peer probes alive again; the monitor then
// records kLeaseAcquired and returns to kHealthy.
#ifndef SRC_HOST_LIVENESS_H_
#define SRC_HOST_LIVENESS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

namespace strom {

struct LivenessConfig {
  SimTime lease_interval = Us(20);  // keepalive period == lease duration
  SimTime backoff_initial = Us(10);
  SimTime backoff_max = Us(640);  // exponential backoff cap
  int max_attempts = 0;           // 0 = retry forever
};

struct LivenessCounters {
  uint64_t leases_renewed = 0;
  uint64_t peers_declared_dead = 0;
  uint64_t reconnect_attempts = 0;
  uint64_t leases_acquired = 0;
  uint64_t reconnects_abandoned = 0;
  uint64_t timers_cancelled_at_crash = 0;
};

class LivenessMonitor {
 public:
  LivenessMonitor(Simulator& sim, int host_index, LivenessConfig config = {});

  LivenessMonitor(const LivenessMonitor&) = delete;
  LivenessMonitor& operator=(const LivenessMonitor&) = delete;

  // Registers a peer. `peer_alive` is the keepalive probe (see header
  // comment); `reconnect` re-establishes every QP lane toward the peer with
  // fresh PSNs and is invoked with the 0-based attempt number that
  // succeeded. Call before Start().
  void AddPeer(int peer, std::function<bool()> peer_alive,
               std::function<void(int attempt)> reconnect);

  // Arms the lease timer of every registered peer.
  void Start();

  // Cancels every pending lease/backoff timer without touching peer state.
  // The workload layer calls this once its drain completes — leases re-arm
  // forever by design, so a run would otherwise never go idle.
  void Stop();

  // Local crash: every lease/backoff timer dies with the host (armed timers
  // are counted, matching the NIC stack's armed-at-crash census).
  void OnLocalCrash();
  // Local restart: all peer leases are void (this end lost its QPs), so
  // every peer enters the reconnect path regardless of its own health.
  void OnLocalRestart();

  // True while `peer`'s lease is current (kHealthy). The workload layer
  // gates posting on this to avoid spraying ops into a known-dead peer.
  bool PeerHealthy(int peer) const;

  void AttachFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  const LivenessCounters& counters() const { return counters_; }

 private:
  enum class PeerState { kHealthy, kDead, kAbandoned, kLocalDown };

  struct Peer {
    int index = -1;
    std::function<bool()> alive;
    std::function<void(int attempt)> reconnect;
    PeerState state = PeerState::kHealthy;
    int attempt = 0;
    SimTime backoff = 0;
    Simulator::TimerHandle timer;  // lease while kHealthy, backoff while kDead
  };

  void ArmLease(Peer& p);
  void ArmBackoff(Peer& p, SimTime delay);
  void OnTimer(size_t peer_slot);
  void DeclareDead(Peer& p);
  void Record(FlightRecordType type, const Peer& p) const;

  Simulator& sim_;
  int host_index_;
  LivenessConfig config_;
  std::vector<Peer> peers_;
  LivenessCounters counters_;
  FlightRecorder* recorder_ = nullptr;
  bool started_ = false;
};

}  // namespace strom

#endif  // SRC_HOST_LIVENESS_H_
