#include "src/host/liveness.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace strom {

LivenessMonitor::LivenessMonitor(Simulator& sim, int host_index, LivenessConfig config)
    : sim_(sim), host_index_(host_index), config_(config) {
  STROM_CHECK_GT(config_.lease_interval, 0);
  STROM_CHECK_GT(config_.backoff_initial, 0);
}

void LivenessMonitor::AddPeer(int peer, std::function<bool()> peer_alive,
                              std::function<void(int attempt)> reconnect) {
  STROM_CHECK(!started_) << "AddPeer after Start()";
  Peer p;
  p.index = peer;
  p.alive = std::move(peer_alive);
  p.reconnect = std::move(reconnect);
  peers_.push_back(std::move(p));
}

void LivenessMonitor::Start() {
  STROM_CHECK(!started_);
  started_ = true;
  for (Peer& p : peers_) {
    ArmLease(p);
  }
}

void LivenessMonitor::Record(FlightRecordType type, const Peer& p) const {
  if (recorder_ != nullptr) {
    recorder_->Record(sim_.now(), host_index_, type, /*opcode=*/0, /*qpn=*/0,
                      /*psn=*/uint32_t(p.attempt), /*aux=*/uint32_t(p.index));
  }
}

void LivenessMonitor::ArmLease(Peer& p) {
  const size_t slot = size_t(&p - peers_.data());
  if (p.timer.valid()) {
    sim_.Reschedule(p.timer, config_.lease_interval);
  } else {
    p.timer = sim_.ScheduleCancellable(config_.lease_interval,
                                       [this, slot] { OnTimer(slot); });
  }
}

void LivenessMonitor::ArmBackoff(Peer& p, SimTime delay) {
  const size_t slot = size_t(&p - peers_.data());
  if (p.timer.valid()) {
    sim_.Reschedule(p.timer, delay);
  } else {
    p.timer = sim_.ScheduleCancellable(delay, [this, slot] { OnTimer(slot); });
  }
}

void LivenessMonitor::DeclareDead(Peer& p) {
  ++counters_.peers_declared_dead;
  p.state = PeerState::kDead;
  p.attempt = 0;
  p.backoff = config_.backoff_initial;
  Record(FlightRecordType::kPeerDead, p);
  ArmBackoff(p, p.backoff);
}

void LivenessMonitor::OnTimer(size_t peer_slot) {
  Peer& p = peers_[peer_slot];
  switch (p.state) {
    case PeerState::kHealthy:
      if (p.alive()) {
        ++counters_.leases_renewed;
        ArmLease(p);
      } else {
        DeclareDead(p);
      }
      return;
    case PeerState::kDead: {
      ++counters_.reconnect_attempts;
      Record(FlightRecordType::kReconnectAttempt, p);
      if (p.alive()) {
        p.reconnect(p.attempt);
        ++counters_.leases_acquired;
        p.state = PeerState::kHealthy;
        Record(FlightRecordType::kLeaseAcquired, p);
        p.attempt = 0;
        ArmLease(p);
        return;
      }
      ++p.attempt;
      if (config_.max_attempts > 0 && p.attempt >= config_.max_attempts) {
        ++counters_.reconnects_abandoned;
        p.state = PeerState::kAbandoned;
        return;
      }
      p.backoff = std::min<SimTime>(p.backoff * 2, config_.backoff_max);
      ArmBackoff(p, p.backoff);
      return;
    }
    case PeerState::kAbandoned:
    case PeerState::kLocalDown:
      return;  // stale fire after abandon/crash; timer stays idle
  }
}

void LivenessMonitor::Stop() {
  for (Peer& p : peers_) {
    if (p.timer.valid() && sim_.TimerPending(p.timer)) {
      sim_.Cancel(p.timer);
    }
  }
}

void LivenessMonitor::OnLocalCrash() {
  for (Peer& p : peers_) {
    if (p.timer.valid() && sim_.TimerPending(p.timer)) {
      ++counters_.timers_cancelled_at_crash;
      sim_.Cancel(p.timer);
    }
    p.state = PeerState::kLocalDown;
  }
}

void LivenessMonitor::OnLocalRestart() {
  // Every lease this host held is void: it lost its half of each
  // connection, so each peer goes straight to the reconnect path even when
  // the peer itself never crashed.
  for (Peer& p : peers_) {
    p.state = PeerState::kDead;
    p.attempt = 0;
    p.backoff = config_.backoff_initial;
    Record(FlightRecordType::kPeerDead, p);
    ArmBackoff(p, p.backoff);
  }
}

bool LivenessMonitor::PeerHealthy(int peer) const {
  for (const Peer& p : peers_) {
    if (p.index == peer) {
      return p.state == PeerState::kHealthy;
    }
  }
  return true;  // unmonitored peers are assumed healthy
}

void LivenessMonitor::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  const std::string prefix = process + ".liveness.";
  auto gauge = [&](const char* name, const uint64_t& field) {
    telemetry->metrics.AddGauge(prefix + name, [&field] { return double(field); });
  };
  gauge("leases_renewed", counters_.leases_renewed);
  gauge("peers_declared_dead", counters_.peers_declared_dead);
  gauge("reconnect_attempts", counters_.reconnect_attempts);
  gauge("leases_acquired", counters_.leases_acquired);
  gauge("reconnects_abandoned", counters_.reconnects_abandoned);
  gauge("timers_cancelled_at_crash", counters_.timers_cancelled_at_crash);
}

}  // namespace strom
