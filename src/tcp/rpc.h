// rpcgen-style RPC over the TCP baseline stack (paper §6.2: "we use the
// rpcgen compiler to generate RPCs that can be invoked over TCP on the
// remote machine"). Wire format: [u32 length][u32 opcode][payload] for
// requests, [u32 length][payload] for responses. Marshalling (XDR-class)
// cost is charged on both sides; the server handler additionally reports the
// simulated CPU time its work takes (e.g. list traversal at DRAM latency).
#ifndef SRC_TCP_RPC_H_
#define SRC_TCP_RPC_H_

#include <functional>
#include <map>

#include "src/sim/task.h"
#include "src/tcp/tcp_stack.h"

namespace strom {

class RpcServer {
 public:
  // Handler: consumes the request, returns the response payload, and adds
  // its compute time to *compute_time (simulated host CPU work).
  using Handler =
      std::function<ByteBuffer(uint32_t opcode, ByteSpan request, SimTime* compute_time)>;

  RpcServer(TcpStack& stack, uint16_t port, Handler handler);

  uint64_t calls_served() const { return calls_served_; }

 private:
  struct ClientState {
    ByteBuffer pending;
  };

  void OnBytes(TcpConnection* conn, ClientState& state, ByteBuffer data);

  TcpStack& stack_;
  Handler handler_;
  std::map<TcpConnection*, ClientState> clients_;
  uint64_t calls_served_ = 0;
};

class RpcClient {
 public:
  RpcClient(TcpStack& stack, Ipv4Addr server_ip, uint16_t port);

  // Connects (once) and performs a call; returns the response payload.
  ValueTask<ByteBuffer> Call(uint32_t opcode, ByteBuffer request);

 private:
  TcpStack& stack_;
  Ipv4Addr server_ip_;
  uint16_t port_;
  TcpConnection* conn_ = nullptr;
  SimEvent connected_;
  ByteBuffer rx_pending_;
  SimEvent* response_waiter_ = nullptr;
  ByteBuffer response_;
  bool response_ready_ = false;
};

}  // namespace strom

#endif  // SRC_TCP_RPC_H_
