// Simplified kernel TCP stack for the rpcgen-style baseline (paper §6.2).
// Real enough to exercise a reliable byte stream over the simulated links —
// 3-way handshake, MSS segmentation, cumulative ACKs, go-back-N retransmit,
// fixed flow-control window — while charging the kernel-crossing costs
// (syscalls, interrupt + wakeup, copies) that make socket RPC slow relative
// to RDMA. Congestion control is omitted: flows are short and the link
// uncontended, matching the paper's two-machine testbed.
#ifndef SRC_TCP_TCP_STACK_H_
#define SRC_TCP_TCP_STACK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "src/cpu/cpu_model.h"
#include "src/netsim/switch.h"
#include "src/sim/simulator.h"
#include "src/tcp/segment.h"

namespace strom {

struct TcpConfig {
  uint32_t mss = 1448;            // 1500 - IP(20) - TCP(20) - margin
  uint32_t window = 256 * 1024;   // fixed advertised window
  SimTime rto = Ms(2);
  SimTime stack_tx_time = Us(1);  // kernel segmentation + header path per send
};

struct TcpCounters {
  uint64_t segments_sent = 0;
  uint64_t segments_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
  uint64_t retransmits = 0;
};

class TcpStack;

class TcpConnection {
 public:
  using ReceiveCallback = std::function<void(ByteBuffer)>;

  bool established() const { return state_ == State::kEstablished; }

  // Enqueues application bytes (charged: syscall + copy); the stack segments
  // and transmits them as the window allows.
  void Send(ByteBuffer data);

  // In-order stream delivery to the application, after interrupt + wakeup.
  void SetReceiveCallback(ReceiveCallback cb) { on_receive_ = std::move(cb); }

  void SetEstablishedCallback(std::function<void()> cb) { on_established_ = std::move(cb); }

  uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }

 private:
  friend class TcpStack;
  enum class State { kSynSent, kSynReceived, kEstablished };

  TcpConnection(TcpStack& stack, Ipv4Addr peer_ip, uint16_t local_port, uint16_t peer_port)
      : stack_(stack), peer_ip_(peer_ip), local_port_(local_port), peer_port_(peer_port) {}

  void PumpSend();
  void OnSegment(const TcpSegment& seg);
  void ArmTimer();
  void OnTimeout(uint64_t generation);

  TcpStack& stack_;
  Ipv4Addr peer_ip_;
  uint16_t local_port_;
  uint16_t peer_port_;
  State state_ = State::kSynSent;

  // Send side.
  uint32_t snd_una_ = 0;   // oldest unacknowledged
  uint32_t snd_nxt_ = 0;   // next sequence to send
  uint32_t iss_ = 0;       // initial send sequence
  std::deque<uint8_t> send_buffer_;  // bytes from snd_una_ onward
  uint64_t timer_generation_ = 0;
  bool timer_armed_ = false;

  // Receive side.
  uint32_t rcv_nxt_ = 0;
  std::map<uint32_t, ByteBuffer> out_of_order_;
  ReceiveCallback on_receive_;
  std::function<void()> on_established_;
};

class TcpStack {
 public:
  TcpStack(Simulator& sim, const CpuModel& cpu, Ipv4Addr ip, MacAddr mac, const ArpTable& arp,
           TcpConfig config = {});

  using FrameSender = std::function<void(ByteBuffer)>;
  using AcceptCallback = std::function<void(TcpConnection*)>;

  void SetFrameSender(FrameSender sender) { send_frame_ = std::move(sender); }
  void OnFrame(ByteBuffer frame);

  void Listen(uint16_t port, AcceptCallback on_accept);
  TcpConnection* Connect(Ipv4Addr dst_ip, uint16_t dst_port);

  const TcpCounters& counters() const { return counters_; }
  const TcpConfig& config() const { return config_; }
  Simulator& sim() { return sim_; }
  const CpuModel& cpu() const { return cpu_; }

 private:
  friend class TcpConnection;
  struct ConnKey {
    Ipv4Addr peer_ip;
    uint16_t local_port;
    uint16_t peer_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void SendSegment(TcpConnection& conn, bool syn, ByteBuffer payload, uint32_t seq);
  void SendRawSegment(Ipv4Addr dst, uint16_t src_port, uint16_t dst_port, bool syn, bool ack,
                      uint32_t seq, uint32_t ack_no, ByteBuffer payload);

  Simulator& sim_;
  const CpuModel& cpu_;
  Ipv4Addr ip_;
  MacAddr mac_;
  const ArpTable& arp_;
  TcpConfig config_;
  FrameSender send_frame_;
  std::map<uint16_t, AcceptCallback> listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> connections_;
  TcpCounters counters_;
  uint16_t next_ephemeral_port_ = 40000;
  uint32_t next_iss_ = 1;
};

}  // namespace strom

#endif  // SRC_TCP_TCP_STACK_H_
