#include "src/tcp/rpc.h"

#include "src/common/logging.h"

namespace strom {

RpcServer::RpcServer(TcpStack& stack, uint16_t port, Handler handler)
    : stack_(stack), handler_(std::move(handler)) {
  stack_.Listen(port, [this](TcpConnection* conn) {
    ClientState& state = clients_[conn];
    conn->SetReceiveCallback([this, conn, &state](ByteBuffer data) {
      OnBytes(conn, state, std::move(data));
    });
  });
}

void RpcServer::OnBytes(TcpConnection* conn, ClientState& state, ByteBuffer data) {
  state.pending.insert(state.pending.end(), data.begin(), data.end());
  while (state.pending.size() >= 4) {
    const uint32_t length = LoadLe32(state.pending.data());
    if (state.pending.size() < 4 + length || length < 4) {
      return;
    }
    const uint32_t opcode = LoadLe32(state.pending.data() + 4);
    ByteBuffer request(state.pending.begin() + 8, state.pending.begin() + 4 + length);
    state.pending.erase(state.pending.begin(), state.pending.begin() + 4 + length);

    // Unmarshal + execute + marshal, then send the response.
    SimTime compute = stack_.cpu().RpcMarshal();
    ByteBuffer payload = handler_(opcode, request, &compute);
    ++calls_served_;

    ByteBuffer response(4 + payload.size());
    StoreLe32(response.data(), static_cast<uint32_t>(payload.size()));
    std::copy(payload.begin(), payload.end(), response.begin() + 4);
    stack_.sim().Schedule(compute, [conn, r = std::move(response)]() mutable {
      conn->Send(std::move(r));
    });
  }
}

RpcClient::RpcClient(TcpStack& stack, Ipv4Addr server_ip, uint16_t port)
    : stack_(stack), server_ip_(server_ip), port_(port), connected_(stack.sim()) {}

ValueTask<ByteBuffer> RpcClient::Call(uint32_t opcode, ByteBuffer request) {
  if (conn_ == nullptr) {
    conn_ = stack_.Connect(server_ip_, port_);
    conn_->SetEstablishedCallback([this] { connected_.Trigger(); });
    conn_->SetReceiveCallback([this](ByteBuffer data) {
      rx_pending_.insert(rx_pending_.end(), data.begin(), data.end());
      if (rx_pending_.size() >= 4) {
        const uint32_t length = LoadLe32(rx_pending_.data());
        if (rx_pending_.size() >= 4 + length) {
          response_.assign(rx_pending_.begin() + 4, rx_pending_.begin() + 4 + length);
          rx_pending_.erase(rx_pending_.begin(), rx_pending_.begin() + 4 + length);
          response_ready_ = true;
          if (response_waiter_ != nullptr) {
            response_waiter_->Trigger();
          }
        }
      }
    });
  }
  if (!conn_->established()) {
    co_await connected_.Wait();
  }

  // Marshal the request (client-side XDR cost), then send. The response
  // waiter is armed before the send so an early response cannot be missed.
  co_await Delay(stack_.sim(), stack_.cpu().RpcMarshal());
  ByteBuffer message(8 + request.size());
  StoreLe32(message.data(), static_cast<uint32_t>(4 + request.size()));
  StoreLe32(message.data() + 4, opcode);
  std::copy(request.begin(), request.end(), message.begin() + 8);

  response_ready_ = false;
  SimEvent waiter(stack_.sim());
  response_waiter_ = &waiter;
  conn_->Send(std::move(message));
  if (!response_ready_) {
    co_await waiter.Wait();
  }
  response_waiter_ = nullptr;
  co_await Delay(stack_.sim(), stack_.cpu().RpcMarshal());
  co_return std::move(response_);
}

}  // namespace strom
