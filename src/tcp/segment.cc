#include "src/tcp/segment.h"

namespace strom {

void TcpHeader::Encode(WireWriter& w) const {
  w.U16(src_port);
  w.U16(dst_port);
  w.U32(seq);
  w.U32(ack);
  uint16_t off_flags = (5u << 12);  // data offset 5 words
  if (fin) {
    off_flags |= 0x01;
  }
  if (syn) {
    off_flags |= 0x02;
  }
  if (rst) {
    off_flags |= 0x04;
  }
  if (ack_flag) {
    off_flags |= 0x10;
  }
  w.U16(off_flags);
  w.U16(window);
  w.U16(0);  // checksum (link-level corruption is out of scope for the baseline)
  w.U16(0);  // urgent pointer
}

TcpHeader TcpHeader::Decode(WireReader& r) {
  TcpHeader h;
  h.src_port = r.U16();
  h.dst_port = r.U16();
  h.seq = r.U32();
  h.ack = r.U32();
  const uint16_t off_flags = r.U16();
  h.fin = (off_flags & 0x01) != 0;
  h.syn = (off_flags & 0x02) != 0;
  h.rst = (off_flags & 0x04) != 0;
  h.ack_flag = (off_flags & 0x10) != 0;
  h.window = r.U16();
  r.U16();  // checksum
  r.U16();  // urgent
  return h;
}

ByteBuffer EncodeTcpFrame(const MacAddr& src_mac, const MacAddr& dst_mac,
                          const TcpSegment& seg) {
  ByteBuffer frame;
  WireWriter w(frame);
  EthHeader eth;
  eth.src = src_mac;
  eth.dst = dst_mac;
  eth.Encode(w);

  Ipv4Header ip;
  ip.protocol = kIpProtoTcp;
  ip.src = seg.src_ip;
  ip.dst = seg.dst_ip;
  ip.total_length =
      static_cast<uint16_t>(Ipv4Header::kSize + TcpHeader::kSize + seg.payload.size());
  ip.Encode(w);

  seg.tcp.Encode(w);
  w.Bytes(seg.payload);
  return frame;
}

Result<TcpSegment> ParseTcpFrame(ByteSpan frame) {
  WireReader r(frame);
  EthHeader eth = EthHeader::Decode(r);
  if (r.failed() || eth.ethertype != kEtherTypeIpv4) {
    return Status(StatusCode::kInvalidArgument, "not IPv4");
  }
  bool csum_ok = false;
  Ipv4Header ip = Ipv4Header::Decode(r, &csum_ok);
  if (r.failed() || !csum_ok || ip.protocol != kIpProtoTcp) {
    return Status(StatusCode::kInvalidArgument, "not TCP");
  }
  TcpSegment seg;
  seg.src_ip = ip.src;
  seg.dst_ip = ip.dst;
  seg.tcp = TcpHeader::Decode(r);
  if (r.failed()) {
    return Status(StatusCode::kInvalidArgument, "truncated TCP header");
  }
  const size_t payload_len =
      ip.total_length - Ipv4Header::kSize - TcpHeader::kSize;
  ByteSpan payload = r.Bytes(payload_len);
  if (r.failed()) {
    return Status(StatusCode::kInvalidArgument, "truncated TCP payload");
  }
  seg.payload.assign(payload.begin(), payload.end());
  return seg;
}

}  // namespace strom
