#include "src/tcp/tcp_stack.h"

#include <algorithm>

#include "src/common/logging.h"

namespace strom {

TcpStack::TcpStack(Simulator& sim, const CpuModel& cpu, Ipv4Addr ip, MacAddr mac,
                   const ArpTable& arp, TcpConfig config)
    : sim_(sim), cpu_(cpu), ip_(ip), mac_(mac), arp_(arp), config_(config) {}

void TcpStack::Listen(uint16_t port, AcceptCallback on_accept) {
  listeners_[port] = std::move(on_accept);
}

TcpConnection* TcpStack::Connect(Ipv4Addr dst_ip, uint16_t dst_port) {
  const uint16_t local_port = next_ephemeral_port_++;
  auto conn = std::make_unique<TcpConnection>(
      TcpConnection(*this, dst_ip, local_port, dst_port));
  TcpConnection* ptr = conn.get();
  connections_[ConnKey{dst_ip, local_port, dst_port}] = std::move(conn);

  ptr->iss_ = next_iss_;
  next_iss_ += 1'000'000;
  ptr->snd_una_ = ptr->iss_;
  ptr->snd_nxt_ = ptr->iss_ + 1;  // SYN consumes one sequence number
  ptr->state_ = TcpConnection::State::kSynSent;
  SendRawSegment(dst_ip, local_port, dst_port, /*syn=*/true, /*ack=*/false, ptr->iss_, 0, {});
  ptr->ArmTimer();
  return ptr;
}

void TcpStack::SendRawSegment(Ipv4Addr dst, uint16_t src_port, uint16_t dst_port, bool syn,
                              bool ack, uint32_t seq, uint32_t ack_no, ByteBuffer payload) {
  TcpSegment seg;
  seg.src_ip = ip_;
  seg.dst_ip = dst;
  seg.tcp.src_port = src_port;
  seg.tcp.dst_port = dst_port;
  seg.tcp.syn = syn;
  seg.tcp.ack_flag = ack;
  seg.tcp.seq = seq;
  seg.tcp.ack = ack_no;
  seg.payload = std::move(payload);

  MacAddr dst_mac;
  STROM_CHECK(arp_.Lookup(dst, &dst_mac)) << "no ARP entry for " << IpToString(dst);
  ByteBuffer frame = EncodeTcpFrame(mac_, dst_mac, seg);
  ++counters_.segments_sent;
  counters_.bytes_sent += seg.payload.size();

  // Kernel TX path (header construction, qdisc) before the wire.
  sim_.Schedule(config_.stack_tx_time, [this, f = std::move(frame)]() mutable {
    if (send_frame_) {
      send_frame_(std::move(f));
    }
  });
}

void TcpStack::OnFrame(ByteBuffer frame) {
  Result<TcpSegment> parsed = ParseTcpFrame(frame);
  if (!parsed.ok()) {
    return;
  }
  ++counters_.segments_received;
  const TcpSegment& seg = *parsed;

  const ConnKey key{seg.src_ip, seg.tcp.dst_port, seg.tcp.src_port};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->OnSegment(seg);
    return;
  }

  // New connection: SYN to a listening port.
  if (seg.tcp.syn && !seg.tcp.ack_flag) {
    auto listener = listeners_.find(seg.tcp.dst_port);
    if (listener == listeners_.end()) {
      return;  // no RST handling needed for the baseline
    }
    auto conn = std::make_unique<TcpConnection>(
        TcpConnection(*this, seg.src_ip, seg.tcp.dst_port, seg.tcp.src_port));
    TcpConnection* ptr = conn.get();
    connections_[key] = std::move(conn);
    ptr->state_ = TcpConnection::State::kSynReceived;
    ptr->rcv_nxt_ = seg.tcp.seq + 1;
    ptr->iss_ = next_iss_;
    next_iss_ += 1'000'000;
    ptr->snd_una_ = ptr->iss_;
    ptr->snd_nxt_ = ptr->iss_ + 1;
    SendRawSegment(seg.src_ip, seg.tcp.dst_port, seg.tcp.src_port, /*syn=*/true,
                   /*ack=*/true, ptr->iss_, ptr->rcv_nxt_, {});
    listener->second(ptr);
  }
}

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------

void TcpConnection::Send(ByteBuffer data) {
  // Application send: syscall + copy into kernel socket buffer.
  const SimTime cost =
      stack_.cpu().SyscallOverhead() + stack_.cpu().MemcpyTime(data.size());
  stack_.sim().Schedule(cost, [this, d = std::move(data)]() mutable {
    send_buffer_.insert(send_buffer_.end(), d.begin(), d.end());
    PumpSend();
  });
}

void TcpConnection::PumpSend() {
  if (state_ != State::kEstablished) {
    return;
  }
  while (true) {
    const uint64_t in_flight = snd_nxt_ - snd_una_;
    const uint64_t unsent_offset = in_flight;  // bytes of send_buffer_ already sent
    if (unsent_offset >= send_buffer_.size()) {
      return;  // nothing new to send
    }
    if (in_flight >= stack_.config().window) {
      return;  // window full
    }
    const uint64_t can_send =
        std::min<uint64_t>({send_buffer_.size() - unsent_offset,
                            stack_.config().window - in_flight, stack_.config().mss});
    ByteBuffer payload(send_buffer_.begin() + static_cast<long>(unsent_offset),
                       send_buffer_.begin() + static_cast<long>(unsent_offset + can_send));
    stack_.SendRawSegment(peer_ip_, local_port_, peer_port_, /*syn=*/false, /*ack=*/true,
                          snd_nxt_, rcv_nxt_, std::move(payload));
    snd_nxt_ += static_cast<uint32_t>(can_send);
    if (!timer_armed_) {
      ArmTimer();
    }
  }
}

void TcpConnection::ArmTimer() {
  timer_armed_ = true;
  const uint64_t gen = ++timer_generation_;
  stack_.sim().Schedule(stack_.config().rto, [this, gen] { OnTimeout(gen); });
}

void TcpConnection::OnTimeout(uint64_t generation) {
  if (generation != timer_generation_ || snd_nxt_ == snd_una_) {
    timer_armed_ = false;
    return;
  }
  // Go-back-N: rewind to the oldest unacknowledged byte.
  ++stack_.counters_.retransmits;
  if (state_ == State::kSynSent) {
    stack_.SendRawSegment(peer_ip_, local_port_, peer_port_, /*syn=*/true, /*ack=*/false,
                          iss_, 0, {});
  } else {
    snd_nxt_ = snd_una_;
    PumpSend();
  }
  ArmTimer();
}

void TcpConnection::OnSegment(const TcpSegment& seg) {
  // Handshake progression.
  if (state_ == State::kSynSent && seg.tcp.syn && seg.tcp.ack_flag) {
    rcv_nxt_ = seg.tcp.seq + 1;
    snd_una_ = seg.tcp.ack;
    state_ = State::kEstablished;
    stack_.SendRawSegment(peer_ip_, local_port_, peer_port_, false, true, snd_nxt_, rcv_nxt_,
                          {});
    if (on_established_) {
      on_established_();
    }
    PumpSend();
    return;
  }
  if (state_ == State::kSynReceived && seg.tcp.ack_flag && !seg.tcp.syn) {
    state_ = State::kEstablished;
    if (on_established_) {
      on_established_();
    }
    // fall through: the ACK may carry data
  }

  // ACK processing.
  if (seg.tcp.ack_flag && SeqDistance(snd_una_, seg.tcp.ack) > 0) {
    const uint32_t acked = seg.tcp.ack - snd_una_;
    const uint32_t from_buffer =
        std::min<uint32_t>(acked, static_cast<uint32_t>(send_buffer_.size()));
    send_buffer_.erase(send_buffer_.begin(), send_buffer_.begin() + from_buffer);
    snd_una_ = seg.tcp.ack;
    if (snd_nxt_ == snd_una_) {
      timer_armed_ = false;
      ++timer_generation_;  // cancel
    } else {
      ArmTimer();
    }
    PumpSend();
  }

  // Data processing.
  if (seg.payload.empty()) {
    return;
  }
  if (SeqDistance(rcv_nxt_, seg.tcp.seq) > 0) {
    out_of_order_[seg.tcp.seq] = seg.payload;  // hold for reassembly
  } else if (SeqDistance(seg.tcp.seq, rcv_nxt_) <=
             static_cast<int32_t>(seg.payload.size()) - 1) {
    // In-order (possibly partially duplicate) data.
    const uint32_t skip = rcv_nxt_ - seg.tcp.seq;
    ByteBuffer fresh(seg.payload.begin() + skip, seg.payload.end());
    rcv_nxt_ += static_cast<uint32_t>(fresh.size());
    // Merge any queued out-of-order segments that are now contiguous.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && SeqDistance(it->first, rcv_nxt_) >= 0) {
      const int32_t overlap = SeqDistance(it->first, rcv_nxt_);
      if (overlap < static_cast<int32_t>(it->second.size())) {
        fresh.insert(fresh.end(), it->second.begin() + overlap, it->second.end());
        rcv_nxt_ += static_cast<uint32_t>(it->second.size()) - overlap;
      }
      it = out_of_order_.erase(it);
    }
    // Interrupt + softirq + application wakeup before the app sees bytes.
    stack_.counters_.bytes_delivered += fresh.size();
    stack_.sim().Schedule(stack_.cpu().InterruptWakeup() +
                              stack_.cpu().MemcpyTime(fresh.size()),
                          [this, f = std::move(fresh)]() mutable {
                            if (on_receive_) {
                              on_receive_(std::move(f));
                            }
                          });
  }
  // ACK everything we have (immediate ACK policy).
  stack_.SendRawSegment(peer_ip_, local_port_, peer_port_, false, true, snd_nxt_, rcv_nxt_, {});
}

}  // namespace strom
