// TCP segment codec for the kernel-stack baseline: Eth | IPv4 | TCP | data.
#ifndef SRC_TCP_SEGMENT_H_
#define SRC_TCP_SEGMENT_H_

#include "src/common/status.h"
#include "src/proto/headers.h"

namespace strom {

struct TcpHeader {
  static constexpr size_t kSize = 20;  // no options
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  uint16_t window = 0xFFFF;

  void Encode(WireWriter& w) const;
  static TcpHeader Decode(WireReader& r);
};

struct TcpSegment {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  TcpHeader tcp;
  ByteBuffer payload;
};

ByteBuffer EncodeTcpFrame(const MacAddr& src_mac, const MacAddr& dst_mac,
                          const TcpSegment& seg);
Result<TcpSegment> ParseTcpFrame(ByteSpan frame);

// Signed distance in 32-bit sequence space.
inline int32_t SeqDistance(uint32_t from, uint32_t to) {
  return static_cast<int32_t>(to - from);
}

}  // namespace strom

#endif  // SRC_TCP_SEGMENT_H_
