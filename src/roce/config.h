// RoCE v2 stack configuration and counters. The two profiles used by the
// evaluation (10 G Virtex-7 and 100 G UltraScale+) are built from these knobs
// in src/testbed/calibration.h.
#ifndef SRC_ROCE_CONFIG_H_
#define SRC_ROCE_CONFIG_H_

#include <cstdint>

#include "src/sim/time.h"

namespace strom {

// DCQCN-style per-QP congestion control (Zhu et al., SIGCOMM'15, simplified):
// fabric switches mark ECN-capable packets CE above an egress-queue
// threshold, the receiver echoes the mark back in the BECN bit of its next
// packet on that QP (our CNP), and the sender reacts with a multiplicative
// rate cut followed by additive recovery. Disabled by default: with
// `enable = false` the TX path is byte-identical to the uncontrolled stack.
struct DcqcnConfig {
  bool enable = false;
  // EWMA gain for the congestion estimate alpha (DCQCN's g).
  double alpha_gain = 1.0 / 16;
  // Minimum spacing between multiplicative rate cuts; CNPs arriving inside
  // the window only update alpha (DCQCN reacts once per CNP interval).
  SimTime rate_cut_interval = Us(50);
  // Additive-increase period; each period without a cut raises the rate by
  // `additive_increase_fraction` of line rate and decays alpha.
  SimTime increase_interval = Us(55);
  double additive_increase_fraction = 0.05;
  // Rate floor as a fraction of line rate (a QP is never silenced entirely).
  double min_rate_fraction = 0.01;
};

struct RoceConfig {
  // NIC clock period: 6400 ps = 156.25 MHz (10 G), 3106 ps = 322 MHz (100 G).
  SimTime clock_ps = 6400;
  // Data-path width in bytes: 8 B at 10 G, 64 B at 100 G (paper §3.5/§7).
  uint32_t data_width = 8;
  // IP MTU on the wire (paper: 1500).
  uint32_t ip_mtu = 1500;
  // Compile-time QP capacity; scales the state-table BRAM (paper §6.1).
  uint32_t max_qps = 500;
  // Multi-Queue: total outstanding RDMA READ elements across all QPs.
  uint32_t multi_queue_total = 256;
  // Requester retransmission timeout and cap on exponential backoff.
  SimTime retransmission_timeout = Us(100);
  SimTime retransmission_timeout_max = Ms(5);
  // Consecutive retransmission timeouts without forward progress before the
  // QP transitions to Error and flushes its work queue (IB retry_cnt
  // analogue; 7 is the verbs maximum).
  uint32_t retry_limit = 7;
  // Fixed pipeline depths in cycles. RX: Process IP + UDP + BTH (incl. the
  // 5-cycle State Table interaction of Fig 3) + RETH/AETH FSM. TX: Request
  // Handler + Generate RETH/AETH + BTH + UDP + IP.
  uint32_t rx_pipeline_cycles = 40;
  uint32_t tx_pipeline_cycles = 40;
  // Requester sets the BTH ack-request bit every N packets inside a long
  // message so the retransmission window stays bounded.
  uint32_t ack_request_interval = 32;
  // Max in-flight payload-fetch DMA commands while packetizing messages.
  // Deep enough that PCIe read latency never caps the message rate below
  // the host command-issue limit (paper §7: the host is the limiter).
  uint32_t tx_fetch_window = 16;
  // Mark outgoing data packets ECT(0) so fabric switches may CE-mark them.
  // Off by default: the 2-node testbed has no marking switch, and ECT=0
  // keeps seed captures byte-identical.
  bool ecn_capable = false;
  DcqcnConfig dcqcn;

  // Line rate of the word-serial data path (data_width bytes per clock):
  // the full sending rate DCQCN recovers toward.
  double LineRateBps() const {
    return double(data_width) * 8.0 * 1e12 / double(clock_ps);
  }

  // Payload bytes per packet at this MTU (see RocePayloadPerPacket).
  uint32_t PayloadPerPacket() const;
  // Number of packets needed for a message of `len` bytes (>= 1).
  uint32_t PacketsForLength(uint64_t len) const {
    const uint32_t pmtu = PayloadPerPacket();
    if (len == 0) {
      return 1;
    }
    return static_cast<uint32_t>((len + pmtu - 1) / pmtu);
  }
};

struct RoceCounters {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;  // payload bytes sent (requester data)
  uint64_t rx_packets = 0;
  uint64_t rx_payload_bytes = 0;
  uint64_t tx_acks = 0;
  uint64_t rx_acks = 0;
  uint64_t tx_naks = 0;
  uint64_t rx_naks = 0;
  uint64_t retransmitted_packets = 0;
  uint64_t timeouts = 0;
  uint64_t icrc_drops = 0;
  uint64_t malformed_drops = 0;
  uint64_t psn_out_of_order_drops = 0;
  uint64_t duplicate_psn_packets = 0;
  uint64_t unknown_qp_drops = 0;
  uint64_t rpc_dispatched = 0;
  uint64_t rpc_unmatched = 0;
  uint64_t write_messages_completed = 0;
  uint64_t read_messages_completed = 0;
  uint64_t qp_errors = 0;            // QPs transitioned to the Error state
  uint64_t qp_resets = 0;            // ResetQp calls
  uint64_t wrs_flushed = 0;          // work requests completed-in-error by a flush
  uint64_t qp_error_drops = 0;       // packets dropped because the QP is in Error
  uint64_t rx_operational_errors = 0;  // NAK(remote operational error) received
  // --- congestion control (ECN/DCQCN + PFC) --------------------------------
  uint64_t rx_ecn_ce = 0;            // CE-marked packets received
  uint64_t tx_becn = 0;              // packets sent with the BECN echo bit
  uint64_t rx_cnp = 0;               // BECN-bearing packets received (CNPs)
  uint64_t dcqcn_rate_cuts = 0;      // multiplicative rate decreases applied
  uint64_t dcqcn_rate_increases = 0; // additive recovery steps applied
  uint64_t pacing_deferrals = 0;     // TX rounds with data held back by pacing
  uint64_t pfc_pause_events = 0;     // 802.3x pause frames honored (quanta > 0)
  // --- crash-recovery failure domain ---------------------------------------
  uint64_t crashes = 0;                    // RoceStack::Crash() invocations
  uint64_t timers_cancelled_at_crash = 0;  // timers armed at the crash instant
  uint64_t tx_stale_naks = 0;  // NAK(stale epoch) sent for pre-crash QPNs
  uint64_t rx_stale_naks = 0;  // NAK(stale epoch) received (peer restarted)
};

}  // namespace strom

#endif  // SRC_ROCE_CONFIG_H_
