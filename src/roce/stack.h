// RoCE v2 network stack (paper §4.1, Fig 2): two pipelined data paths with
// state kept in the State Table, MSN Table, Multi-Queue and Retransmission
// Timer. Supports RDMA WRITE, RDMA READ, and the StRoM RDMA RPC / RDMA RPC
// WRITE verbs. Reliability: cumulative ACKs, NAK on PSN gap, go-back-N
// retransmission driven by per-QP timers.
//
// Timing model: the TX data path emits one packet every `Words(width)` clock
// cycles (II=1 word-serial pipeline — exactly line rate), both pipelines add
// a fixed latency, and the store-and-forward ICRC pass adds one cycle per
// data word (paper §7 explains why this makes 100 G latency flatter).
#ifndef SRC_ROCE_STACK_H_
#define SRC_ROCE_STACK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/qpn_map.h"
#include "src/netsim/switch.h"
#include "src/pcie/dma_engine.h"
#include "src/proto/packet.h"
#include "src/roce/config.h"
#include "src/roce/multi_queue.h"
#include "src/roce/retrans_timer.h"
#include "src/roce/state_table.h"
#include "src/roce/work_request.h"
#include "src/sim/simulator.h"
#include "src/telemetry/pcap_writer.h"
#include "src/telemetry/telemetry.h"

namespace strom {

class Auditor;
class FlightRecorder;
class FlowStats;

class RoceStack {
 public:
  using FrameSender = std::function<void(FrameBuf, TraceContext)>;
  // Returns true if a deployed kernel matched the RPC op-code.
  using RpcHandler = std::function<bool(RpcDelivery)>;
  // Observes payload of plain RDMA WRITEs as it flows to the DMA engine
  // (bump-in-the-wire receive kernels, e.g. HLL).
  using StreamTap = std::function<void(Qpn, const FrameBuf&, bool last)>;
  // Notified when a QP transitions to the Error state (retry exhaustion,
  // remote operational NAK, or local DMA failure). Fires synchronously from
  // inside packet/timeout processing: handlers should record the event and
  // schedule recovery (ResetQp + ConnectQp) on the simulator, not reconnect
  // inline.
  using QpErrorHandler = std::function<void(Qpn, const Status&)>;

  RoceStack(Simulator& sim, RoceConfig config, DmaEngine& dma, Ipv4Addr local_ip,
            MacAddr local_mac, const ArpTable& arp);

  RoceStack(const RoceStack&) = delete;
  RoceStack& operator=(const RoceStack&) = delete;

  // --- wiring -------------------------------------------------------------
  void SetFrameSender(FrameSender sender) { send_frame_ = std::move(sender); }
  void SetRpcHandler(RpcHandler handler) { rpc_handler_ = std::move(handler); }
  void SetStreamTap(StreamTap tap) { stream_tap_ = std::move(tap); }
  void SetQpErrorHandler(QpErrorHandler handler) { qp_error_handler_ = std::move(handler); }
  // Entry point for frames arriving from the Ethernet interface.
  void OnFrame(FrameBuf frame, TraceContext trace = {});

  // Registers TX/RX/message tracks, RoceCounters gauges and per-verb latency
  // histograms under `process` (e.g. "node0").
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);

  // Taps the stack's NIC boundary into `writer`: interface "<process>.nic.tx"
  // records every frame as encoded (pre-wire), "<process>.nic.rx" every frame
  // as it arrives from the Ethernet interface (post-wire, before parsing).
  // Diffing the two against the link capture separates stack bugs from wire
  // faults. Must be called before traffic.
  void AttachCapture(PcapWriter* writer, const std::string& process);

  // Registers queue-depth and occupancy probes with the telemetry sampler.
  void AttachSampler(Telemetry* telemetry, const std::string& process);

  // Per-flow stats hooks (RTT, goodput, retransmits, DCQCN timeline);
  // `host_index` labels this stack's flows in the export. Null detaches.
  void AttachFlowStats(FlowStats* stats, int host_index);

  // Flight-recorder hooks: protocol events (TX/RX/NAK/CNP/QP transitions)
  // plus the last-N frames at the NIC boundary. Null detaches.
  void AttachFlightRecorder(FlightRecorder* recorder, int host_index);

  // Inline protocol audits: responder ePSN must only advance forward, the
  // requester's cumulative ACK must never retire more than is outstanding.
  // Null detaches.
  void AttachAuditor(Auditor* auditor);

  // --- control path (Controller) ------------------------------------------
  // Out-of-band QP setup, equivalent to the driver exchanging QP numbers and
  // initial PSNs over a side channel.
  Status ConnectQp(Qpn local_qpn, Qpn remote_qpn, Ipv4Addr remote_ip, Psn local_psn,
                   Psn remote_psn);
  bool QpConnected(Qpn qpn) const;

  // Tears a QP down: flushes every queued work request as an errored
  // completion and returns the state-table entry to its reset state so
  // ConnectQp can re-establish the pair with fresh PSNs. The reset/reconnect
  // path after a QP error (leave in-flight wire traffic time to drain before
  // reconnecting, or stale PSNs may collide with the new epoch).
  Status ResetQp(Qpn qpn);

  // Forces `qpn` into the Error state: cancels its timer, flushes queued and
  // outstanding work requests as errored completions, and fires the
  // QpErrorHandler. Idempotent. Also invoked internally on retry exhaustion,
  // remote operational NAKs, and local DMA failures.
  void ErrorQp(Qpn qpn, const Status& status);

  // Posts a request to the Request Handler. Fails fast on invalid QPs.
  Status PostRequest(WorkRequest wr);

  // Crash-stop of the whole NIC-side protocol engine: every connected QP is
  // flushed (each posted work request reaches exactly one terminal state,
  // errored) and then wiped; all TX/retransmit/control state is dropped; all
  // timers the stack owns — per-QP retransmission, DCQCN pacing, 802.3x
  // pause resume — are mass-cancelled, with the armed-at-crash census in
  // RoceCounters::timers_cancelled_at_crash. Each wiped QP leaves a
  // tombstone: after restart, packets addressed to a pre-crash QPN are
  // answered with NAK(stale epoch) carrying the new memory-region epoch, so
  // a requester that never saw the crash is fenced instead of silently
  // touching re-registered memory. ConnectQp clears the tombstone.
  void Crash();

  // Memory-region epoch: bumped on every Crash(). Stale-epoch NAKs carry it
  // in the AETH MSN field.
  uint64_t mr_epoch() const { return mr_epoch_; }

  // 802.3x link-level flow control: pauses the TX engine for `quanta` x 512
  // bit-times at the data path's line rate (quanta 0 resumes immediately).
  // Invoked by the node when a PAUSE frame arrives from the fabric switch.
  void Pause(uint16_t quanta);

  // --- introspection -------------------------------------------------------
  const RoceConfig& config() const { return config_; }
  const RoceCounters& counters() const { return counters_; }
  Ipv4Addr local_ip() const { return local_ip_; }
  const StateTable& state_table() const { return state_table_; }
  const MultiQueue& multi_queue() const { return multi_queue_; }
  uint64_t timer_expirations() const { return timer_.expirations(); }
  const RetransTimer& retrans_timer() const { return timer_; }

 private:
  // A message being packetized / awaiting acknowledgment.
  struct PendingWr {
    WorkRequest req;
    Psn first_psn = 0;
    uint32_t psn_span = 0;   // PSNs consumed (response packet count for reads)
    uint32_t send_pkts = 0;  // wire packets this WR emits (1 for read requests)
    Psn last_psn = 0;
    bool is_read_response = false;  // responder role: PSNs preassigned, no ACK
    uint32_t next_fetch = 0;  // next packet index whose payload fetch is issued
    uint32_t next_send = 0;   // next packet index to transmit (in order)
    std::map<uint32_t, FrameBuf> ready;  // fetched chunks keyed by index
    bool completed = false;
    SimTime posted_at = 0;  // when PostRequest accepted the message

    uint32_t ChunkLen(uint32_t idx, uint32_t pmtu) const;
  };
  using WrPtr = std::shared_ptr<PendingWr>;

  // Descriptor of one unacknowledged request packet (requester role).
  struct OutstandingPacket {
    Psn psn = 0;
    IbOpcode opcode = IbOpcode::kWriteOnly;
    VirtAddr remote_addr = 0;
    uint32_t offset = 0;
    uint32_t len = 0;
    WrPtr wr;
  };

  struct QpState {
    bool connected = false;
    Qpn remote_qpn = 0;
    Ipv4Addr remote_ip = 0;
    std::deque<OutstandingPacket> outstanding;  // PSN order
    std::deque<WrPtr> awaiting_ack;             // fully sent writes/RPCs
    // Retransmission timeouts since the last sign of responder life (any
    // ACK/NAK or read-response progress). Exceeding RoceConfig::retry_limit
    // transitions the QP to Error.
    uint32_t consecutive_retries = 0;
    // A CE-marked packet arrived on this QP and its congestion mark has not
    // been echoed back yet; the next transmitted packet (ACK or data)
    // carries the BECN bit and clears it.
    bool ce_to_echo = false;
    // DCQCN rate-limiter state (requester/sender role). `rate_bps == 0`
    // means "uninitialized": the first pacing decision snaps it to line
    // rate, so idle QPs cost nothing.
    struct Dcqcn {
      double rate_bps = 0;
      double alpha = 1.0;
      SimTime next_allowed = 0;   // pacing cursor: earliest next data emit
      SimTime last_cut = 0;
      SimTime last_increase = 0;
    } cc;
    // Stamp of the last TrySendNextDataPacket pacing scan that visited this
    // QP: later WRs of an already-scanned QP are skipped without building a
    // per-call set (the decision order is unchanged, only the lookup is).
    uint64_t pacing_scan_epoch = 0;
  };

  // --- TX path -------------------------------------------------------------
  void PumpTx();
  void FetchPayloads();
  bool TrySendNextDataPacket();
  void SendControlPacket(RocePacket pkt);
  void EmitFrame(const RocePacket& pkt);
  IbOpcode DataOpcode(const PendingWr& wr, uint32_t idx) const;
  void StartWr(const WrPtr& wr);
  void FinishSending(const WrPtr& wr);
  void CompleteWr(const WrPtr& wr, const Status& status);
  void FailPayloadFetch(const WrPtr& wr, const Status& status);

  // --- RX path -------------------------------------------------------------
  void ProcessPacket(RocePacket pkt);
  void HandleResponderPacket(const RocePacket& pkt);
  void HandleAck(const RocePacket& pkt);
  void HandleReadResponse(const RocePacket& pkt);
  void HandleWritePayload(const RocePacket& pkt);
  void HandleReadRequest(const RocePacket& pkt);
  void HandleRpc(const RocePacket& pkt);
  void SendAck(Qpn local_qpn, Psn psn, AckSyndrome syndrome, TraceContext trace = {});

  // --- congestion control ---------------------------------------------------
  // CNP reaction (DCQCN): update alpha, apply a (held-off) multiplicative
  // rate cut.
  void OnCnp(Qpn qpn);
  // Lazy additive recovery: advances the QP's rate toward line rate for
  // every elapsed increase period since the last CNP cut.
  void MaybeRecoverRate(Qpn qpn, QpState::Dcqcn& cc);
  // Charges one emitted data packet against the QP's pacing budget.
  void ChargePacing(QpState& qp, size_t wire_bytes);

  // --- reliability ----------------------------------------------------------
  void RetransmitFrom(Qpn qpn, Psn psn);
  void OnTimeout(Qpn qpn);
  void AdvanceCumulativeAck(Qpn qpn, Psn acked_psn);
  // Auditor hook: responder ePSN must strictly advance when an expected
  // packet is consumed (no-op when no auditor is attached).
  void AuditEpsnAdvance(Qpn qpn, Psn prev_epsn, Psn new_epsn);
  // Completes every queued/outstanding work request of `qpn` with `status`
  // and clears its TX/retransmit/multi-queue state. Shared by ErrorQp and
  // ResetQp.
  void FlushQp(Qpn qpn, const Status& status);

  QpState& Qp(Qpn qpn);

  Simulator& sim_;
  RoceConfig config_;
  DmaEngine& dma_;
  Ipv4Addr local_ip_;
  MacAddr local_mac_;
  const ArpTable& arp_;
  FrameSender send_frame_;
  RpcHandler rpc_handler_;
  StreamTap stream_tap_;
  QpErrorHandler qp_error_handler_;

  StateTable state_table_;
  MsnTable msn_table_;
  MultiQueue multi_queue_;
  RetransTimer timer_;
  QpnMap<QpState> qps_;
  RoceCounters counters_;
  // Epoch fencing: QPs wiped by Crash(), remembered so post-restart packets
  // addressed to them draw a NAK(stale epoch) instead of a silent
  // unknown-QP drop. Erased by ConnectQp.
  struct StaleQp {
    Qpn remote_qpn = 0;
    Ipv4Addr remote_ip = 0;
  };
  std::map<Qpn, StaleQp> stale_qps_;
  uint64_t mr_epoch_ = 0;
  // Bumped by Crash(); RX-pipeline events scheduled before the crash carry
  // the epoch they were born under and die silently if it moved.
  uint32_t crash_epoch_ = 0;
  // Read completion handles, keyed by an internal token carried in the
  // multi-queue context. Kept separately from `outstanding` because a
  // cumulative ACK for a later request may retire the read *request*
  // descriptor while its response data is still streaming in.
  std::map<uint64_t, WrPtr> pending_reads_;
  uint64_t next_read_token_ = 1;

  // TX engine state.
  std::deque<WrPtr> wr_queue_;            // messages not yet fully sent
  std::deque<RocePacket> control_queue_;  // ACKs/NAKs (no payload, no PSN order)
  std::deque<OutstandingPacket> retransmit_queue_;
  std::optional<FrameBuf> retransmit_payload_;  // fetched for queue front
  bool retransmit_fetch_pending_ = false;
  // Bumped whenever the retransmit queue is rebuilt, so an in-flight payload
  // fetch for a previous queue front cannot be attached to a new packet.
  uint64_t retransmit_epoch_ = 0;
  uint32_t fetches_in_flight_ = 0;
  // Index into wr_queue_ of the first WR that may still need payload fetches;
  // everything before it is fully fetched. FetchPayloads runs on every TX
  // pump, so without this cursor it rescans the whole queue each time.
  size_t fetch_cursor_ = 0;
  bool tx_busy_ = false;
  // Set for the duration of Crash(): the flush loop fires user completion
  // callbacks, and nothing they trigger may pump frames out of (or issue
  // payload fetches for) a NIC that is mid-death.
  bool in_crash_ = false;
  // 802.3x pause gate: PumpTx emits nothing before this time.
  SimTime paused_until_ = 0;
  // Earliest DCQCN pacing wakeup currently scheduled (suppresses duplicate
  // wakeups; 0 when none is pending). The wake itself is a cancellable
  // timer: lowering the deadline physically moves the one pending event.
  SimTime pacing_wakeup_at_ = 0;
  Simulator::TimerHandle pacing_timer_;
  // Current pacing-scan stamp; bumped at the top of every DCQCN TX scan and
  // compared against QpState::pacing_scan_epoch to dedupe per-QP work.
  uint64_t pacing_scan_epoch_ = 0;
  // Resume wake for the 802.3x pause gate; extending a pause moves it.
  Simulator::TimerHandle pause_timer_;
  // Pipelines are FIFO: a short packet must not overtake a long one whose
  // store-and-forward latency is higher. These cursors enforce ordering.
  SimTime rx_order_cursor_ = 0;
  SimTime tx_order_cursor_ = 0;

  // Telemetry (optional; null when the owning testbed has tracing off).
  Tracer* tracer_ = nullptr;
  TrackId tx_track_ = kInvalidTrack;
  TrackId rx_track_ = kInvalidTrack;
  TrackId msg_track_ = kInvalidTrack;
  Histogram* write_latency_us_ = nullptr;
  Histogram* read_latency_us_ = nullptr;
  PcapWriter* capture_ = nullptr;
  uint32_t capture_tx_if_ = 0;
  uint32_t capture_rx_if_ = 0;
  FlowStats* flow_stats_ = nullptr;
  FlightRecorder* flight_recorder_ = nullptr;
  Auditor* auditor_ = nullptr;
  int host_index_ = 0;

  const uint32_t pmtu_payload_;
};

}  // namespace strom

#endif  // SRC_ROCE_STACK_H_
