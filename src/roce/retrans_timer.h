// Retransmission Timer (paper §4.1): one timer per queue pair, detecting
// packet loss. The hardware keeps an array of time intervals in on-chip
// memory and continuously decrements all active timers; the event-driven
// equivalent here keeps per-QP deadlines and a generation counter so stale
// expiry events are ignored. Exponential backoff doubles the interval on
// consecutive timeouts.
#ifndef SRC_ROCE_RETRANS_TIMER_H_
#define SRC_ROCE_RETRANS_TIMER_H_

#include <functional>

#include "src/common/qpn_map.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace strom {

class RetransTimer {
 public:
  using ExpiryHandler = std::function<void(Qpn)>;

  RetransTimer(Simulator& sim, uint32_t num_qps, SimTime timeout, SimTime timeout_max);

  void SetExpiryHandler(ExpiryHandler handler) { on_expiry_ = std::move(handler); }

  // Arms (or re-arms, resetting backoff) the QP's timer.
  void Arm(Qpn qpn);
  // Re-arms keeping the current backoff level (after a timeout-driven resend).
  void RearmBackoff(Qpn qpn);
  // Stops the QP's timer (all outstanding packets acknowledged).
  void Cancel(Qpn qpn);

  bool IsArmed(Qpn qpn) const {
    const Entry* e = timers_.Find(qpn);
    return e != nullptr && e->armed;
  }
  uint64_t expirations() const { return expirations_; }

 private:
  struct Entry {
    bool armed = false;
    uint64_t generation = 0;
    SimTime current_timeout = 0;
  };

  void Schedule(Qpn qpn);

  Simulator& sim_;
  SimTime timeout_;
  SimTime timeout_max_;
  QpnMap<Entry> timers_;
  ExpiryHandler on_expiry_;
  uint64_t expirations_ = 0;
};

}  // namespace strom

#endif  // SRC_ROCE_RETRANS_TIMER_H_
