// Retransmission Timer (paper §4.1): one timer per queue pair, detecting
// packet loss. The hardware keeps an array of time intervals in on-chip
// memory and continuously decrements all active timers; the event-driven
// equivalent keeps one cancellable simulator timer per QP: re-arming
// physically moves the pending deadline and cancelling physically removes
// it, so no stale expiry event ever pops through the event queue.
// Exponential backoff doubles the interval on consecutive timeouts.
#ifndef SRC_ROCE_RETRANS_TIMER_H_
#define SRC_ROCE_RETRANS_TIMER_H_

#include <functional>

#include "src/common/qpn_map.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace strom {

class RetransTimer {
 public:
  using ExpiryHandler = std::function<void(Qpn)>;

  RetransTimer(Simulator& sim, uint32_t num_qps, SimTime timeout, SimTime timeout_max);

  void SetExpiryHandler(ExpiryHandler handler) { on_expiry_ = std::move(handler); }

  // Arms (or re-arms, resetting backoff) the QP's timer.
  void Arm(Qpn qpn);
  // Re-arms keeping the current backoff level (after a timeout-driven resend).
  void RearmBackoff(Qpn qpn);
  // Stops the QP's timer (all outstanding packets acknowledged).
  void Cancel(Qpn qpn);

  bool IsArmed(Qpn qpn) const {
    const Entry* e = timers_.Find(qpn);
    return e != nullptr && sim_.TimerPending(e->handle);
  }
  uint64_t expirations() const { return expirations_; }

  // Timer-churn counters (metrics registry): arms/re-arms, cancels of a
  // pending deadline, and the dead events the handle API keeps out of the
  // queue (each re-arm or cancel of a pending timer would have left a
  // generation-checked tombstone to pop at expiry in the old design).
  uint64_t timers_armed() const { return timers_armed_; }
  uint64_t timers_cancelled() const { return timers_cancelled_; }
  uint64_t stale_expiries_eliminated() const { return stale_expiries_eliminated_; }

 private:
  struct Entry {
    Simulator::TimerHandle handle;
    SimTime current_timeout = 0;
  };

  void ArmAt(Qpn qpn, Entry& e);
  void Fire(Qpn qpn);

  Simulator& sim_;
  SimTime timeout_;
  SimTime timeout_max_;
  QpnMap<Entry> timers_;
  ExpiryHandler on_expiry_;
  uint64_t expirations_ = 0;
  uint64_t timers_armed_ = 0;
  uint64_t timers_cancelled_ = 0;
  uint64_t stale_expiries_eliminated_ = 0;
};

}  // namespace strom

#endif  // SRC_ROCE_RETRANS_TIMER_H_
