#include "src/roce/stack.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/logging.h"
#include "src/telemetry/audit.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/flow_stats.h"

namespace strom {

uint32_t RoceConfig::PayloadPerPacket() const {
  return static_cast<uint32_t>(RocePayloadPerPacket(ip_mtu));
}

uint32_t RoceStack::PendingWr::ChunkLen(uint32_t idx, uint32_t pmtu) const {
  const uint64_t len = req.length;
  if (len == 0) {
    return 0;
  }
  const uint64_t start = static_cast<uint64_t>(idx) * pmtu;
  STROM_CHECK_LT(start, len);
  return static_cast<uint32_t>(std::min<uint64_t>(pmtu, len - start));
}

RoceStack::RoceStack(Simulator& sim, RoceConfig config, DmaEngine& dma, Ipv4Addr local_ip,
                     MacAddr local_mac, const ArpTable& arp)
    : sim_(sim),
      config_(config),
      dma_(dma),
      local_ip_(local_ip),
      local_mac_(local_mac),
      arp_(arp),
      state_table_(config.max_qps),
      msn_table_(config.max_qps),
      multi_queue_(config.max_qps, config.multi_queue_total),
      timer_(sim, config.max_qps, config.retransmission_timeout,
             config.retransmission_timeout_max),
      pmtu_payload_(config.PayloadPerPacket()) {
  timer_.SetExpiryHandler([this](Qpn qpn) { OnTimeout(qpn); });
}

void RoceStack::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  tracer_ = &telemetry->tracer;
  tx_track_ = tracer_->RegisterTrack(process, "nic.tx");
  rx_track_ = tracer_->RegisterTrack(process, "nic.rx");
  msg_track_ = tracer_->RegisterTrack(process, "nic.msg");

  const std::string prefix = process + ".roce.";
  auto gauge = [&](const char* name, const uint64_t& field) {
    telemetry->metrics.AddGauge(prefix + name, [&field] { return double(field); });
  };
  gauge("tx_packets", counters_.tx_packets);
  gauge("tx_bytes", counters_.tx_bytes);
  gauge("rx_packets", counters_.rx_packets);
  gauge("rx_payload_bytes", counters_.rx_payload_bytes);
  gauge("tx_acks", counters_.tx_acks);
  gauge("rx_acks", counters_.rx_acks);
  gauge("tx_naks", counters_.tx_naks);
  gauge("rx_naks", counters_.rx_naks);
  gauge("retransmitted_packets", counters_.retransmitted_packets);
  gauge("timeouts", counters_.timeouts);
  gauge("icrc_drops", counters_.icrc_drops);
  gauge("malformed_drops", counters_.malformed_drops);
  gauge("psn_out_of_order_drops", counters_.psn_out_of_order_drops);
  gauge("duplicate_psn_packets", counters_.duplicate_psn_packets);
  gauge("unknown_qp_drops", counters_.unknown_qp_drops);
  gauge("rpc_dispatched", counters_.rpc_dispatched);
  gauge("rpc_unmatched", counters_.rpc_unmatched);
  gauge("write_messages_completed", counters_.write_messages_completed);
  gauge("read_messages_completed", counters_.read_messages_completed);
  gauge("qp_errors", counters_.qp_errors);
  gauge("qp_resets", counters_.qp_resets);
  gauge("wrs_flushed", counters_.wrs_flushed);
  gauge("qp_error_drops", counters_.qp_error_drops);
  gauge("rx_operational_errors", counters_.rx_operational_errors);
  gauge("rx_ecn_ce", counters_.rx_ecn_ce);
  gauge("tx_becn", counters_.tx_becn);
  gauge("rx_cnp", counters_.rx_cnp);
  gauge("dcqcn_rate_cuts", counters_.dcqcn_rate_cuts);
  gauge("dcqcn_rate_increases", counters_.dcqcn_rate_increases);
  gauge("pacing_deferrals", counters_.pacing_deferrals);
  gauge("pfc_pause_events", counters_.pfc_pause_events);
  gauge("crashes", counters_.crashes);
  gauge("timers_cancelled_at_crash", counters_.timers_cancelled_at_crash);
  gauge("tx_stale_naks", counters_.tx_stale_naks);
  gauge("rx_stale_naks", counters_.rx_stale_naks);
  // Timer-churn counters from the cancellable-timer core: dead events that
  // the handle API physically removes instead of popping as tombstones.
  telemetry->metrics.AddGauge(prefix + "timers_armed",
                              [this] { return double(timer_.timers_armed()); });
  telemetry->metrics.AddGauge(prefix + "timers_cancelled",
                              [this] { return double(timer_.timers_cancelled()); });
  telemetry->metrics.AddGauge(
      prefix + "stale_expiries_eliminated",
      [this] { return double(timer_.stale_expiries_eliminated()); });

  const std::vector<double> bounds = {1,  2,  3,   4,   5,   7.5, 10,  15,
                                      20, 30, 50,  75,  100, 200, 500, 1000};
  write_latency_us_ = telemetry->metrics.AddHistogram(prefix + "write_latency_us", bounds);
  read_latency_us_ = telemetry->metrics.AddHistogram(prefix + "read_latency_us", bounds);
}

void RoceStack::AttachCapture(PcapWriter* writer, const std::string& process) {
  capture_ = writer;
  capture_tx_if_ = writer->AddInterface(process + ".nic.tx");
  capture_rx_if_ = writer->AddInterface(process + ".nic.rx");
}

void RoceStack::AttachSampler(Telemetry* telemetry, const std::string& process) {
  const std::string prefix = process + ".roce.";
  TimeSeriesSampler& s = telemetry->sampler;
  s.AddProbe(prefix + "wr_queue_depth", [this](SimTime) { return double(wr_queue_.size()); });
  s.AddProbe(prefix + "control_queue_depth",
             [this](SimTime) { return double(control_queue_.size()); });
  s.AddProbe(prefix + "retransmit_queue_depth",
             [this](SimTime) { return double(retransmit_queue_.size()); });
  s.AddProbe(prefix + "outstanding_packets", [this](SimTime) {
    size_t n = 0;
    qps_.ForEach([&n](Qpn, const QpState& qp) { n += qp.outstanding.size(); });
    return double(n);
  });
  s.AddProbe(prefix + "outstanding_reads",
             [this](SimTime) { return double(pending_reads_.size()); });
  s.AddProbe(prefix + "multi_queue_occupancy", [this](SimTime) {
    return double(multi_queue_.total_elements() - multi_queue_.free_elements());
  });
}

void RoceStack::AttachFlowStats(FlowStats* stats, int host_index) {
  flow_stats_ = stats;
  host_index_ = host_index;
}

void RoceStack::AttachFlightRecorder(FlightRecorder* recorder, int host_index) {
  flight_recorder_ = recorder;
  host_index_ = host_index;
}

void RoceStack::AttachAuditor(Auditor* auditor) { auditor_ = auditor; }

RoceStack::QpState& RoceStack::Qp(Qpn qpn) {
  STROM_CHECK_LT(qpn, config_.max_qps);
  return qps_[qpn];
}

Status RoceStack::ConnectQp(Qpn local_qpn, Qpn remote_qpn, Ipv4Addr remote_ip, Psn local_psn,
                            Psn remote_psn) {
  if (local_qpn >= config_.max_qps) {
    return OutOfRangeError("QPN beyond configured max_qps");
  }
  STROM_RETURN_IF_ERROR(state_table_.Activate(local_qpn, remote_psn, local_psn));
  // Touch every per-QP table now so steady-state packet processing is
  // lookup-only: the pooled maps then never rehash (and never invalidate
  // held references) outside connection setup.
  msn_table_.Entry(local_qpn);
  QpState& qp = qps_[local_qpn];
  qp.connected = true;
  qp.remote_qpn = remote_qpn;
  qp.remote_ip = remote_ip;
  // Re-establishing the QP ends its fencing window: the peer has seen the
  // new epoch out of band.
  stale_qps_.erase(local_qpn);
  return Status::Ok();
}

bool RoceStack::QpConnected(Qpn qpn) const {
  const QpState* qp = qps_.Find(qpn);
  return qp != nullptr && qp->connected;
}

// ---------------------------------------------------------------------------
// TX path: Request Handler + packetization + pacing
// ---------------------------------------------------------------------------

Status RoceStack::PostRequest(WorkRequest wr) {
  // On rejection the completion callback still fires so waiters never hang.
  auto fail = [&wr](Status st) {
    if (wr.on_complete) {
      wr.on_complete(st);
    }
    return st;
  };
  if (!QpConnected(wr.qpn)) {
    return fail(FailedPreconditionError("QP not connected"));
  }
  if (state_table_.Entry(wr.qpn).phase == QpPhase::kError) {
    return fail(FailedPreconditionError("QP in Error state (ResetQp + ConnectQp required)"));
  }
  if (!wr.inline_data.empty()) {
    wr.length = static_cast<uint32_t>(wr.inline_data.size());
  }
  if (wr.kind == WorkRequest::Kind::kRpc && wr.inline_data.size() > pmtu_payload_) {
    return fail(InvalidArgumentError("RPC parameters exceed one MTU"));
  }

  auto pending = std::make_shared<PendingWr>();
  pending->req = std::move(wr);
  pending->posted_at = sim_.now();

  StateTableEntry& st = state_table_.Entry(pending->req.qpn);
  pending->first_psn = st.next_psn;

  switch (pending->req.kind) {
    case WorkRequest::Kind::kWrite:
    case WorkRequest::Kind::kRpcWrite:
      pending->send_pkts = config_.PacketsForLength(pending->req.length);
      pending->psn_span = pending->send_pkts;
      break;
    case WorkRequest::Kind::kRpc:
      pending->send_pkts = 1;
      pending->psn_span = 1;
      break;
    case WorkRequest::Kind::kRead: {
      if (pending->req.length == 0) {
        Status bad = InvalidArgumentError("zero-length read");
        if (pending->req.on_complete) {
          pending->req.on_complete(bad);
        }
        return bad;
      }
      pending->send_pkts = 1;
      pending->psn_span = config_.PacketsForLength(pending->req.length);
      ReadContext ctx;
      ctx.local_addr = pending->req.local_addr;
      ctx.length = pending->req.length;
      ctx.first_psn = pending->first_psn;
      ctx.num_packets = pending->psn_span;
      ctx.wr_id = next_read_token_++;
      pending_reads_[ctx.wr_id] = pending;
      if (!multi_queue_.Push(pending->req.qpn, ctx)) {
        pending_reads_.erase(ctx.wr_id);
        Status full = ResourceExhaustedError("multi-queue full (too many outstanding reads)");
        if (pending->req.on_complete) {
          pending->req.on_complete(full);
        }
        return full;
      }
      break;
    }
  }
  pending->last_psn = PsnAdd(pending->first_psn, pending->psn_span - 1);
  st.next_psn = PsnAdd(st.next_psn, pending->psn_span);

  wr_queue_.push_back(std::move(pending));
  PumpTx();
  return Status::Ok();
}

IbOpcode RoceStack::DataOpcode(const PendingWr& wr, uint32_t idx) const {
  const bool only = wr.send_pkts == 1;
  const bool first = idx == 0;
  const bool last = idx + 1 == wr.send_pkts;
  if (wr.is_read_response) {
    if (only) {
      return IbOpcode::kReadRespOnly;
    }
    if (first) {
      return IbOpcode::kReadRespFirst;
    }
    return last ? IbOpcode::kReadRespLast : IbOpcode::kReadRespMiddle;
  }
  switch (wr.req.kind) {
    case WorkRequest::Kind::kWrite:
      if (only) {
        return IbOpcode::kWriteOnly;
      }
      if (first) {
        return IbOpcode::kWriteFirst;
      }
      return last ? IbOpcode::kWriteLast : IbOpcode::kWriteMiddle;
    case WorkRequest::Kind::kRpcWrite:
      if (only) {
        return IbOpcode::kRpcWriteOnly;
      }
      if (first) {
        return IbOpcode::kRpcWriteFirst;
      }
      return last ? IbOpcode::kRpcWriteLast : IbOpcode::kRpcWriteMiddle;
    case WorkRequest::Kind::kRpc:
      return IbOpcode::kRpcParams;
    case WorkRequest::Kind::kRead:
      return IbOpcode::kReadRequest;
  }
  return IbOpcode::kWriteOnly;
}

void RoceStack::FetchPayloads() {
  // Pipeline payload fetches across queued messages so back-to-back small
  // messages are not serialized on PCIe read latency. The cursor skips the
  // fully fetched prefix of the queue (same fetch order as scanning from the
  // front, since WRs ahead of the cursor have nothing left to fetch).
  for (size_t qi = fetch_cursor_; qi < wr_queue_.size(); ++qi) {
    WrPtr& wr = wr_queue_[qi];
    if (wr->next_fetch >= wr->send_pkts) {
      if (qi == fetch_cursor_) {
        ++fetch_cursor_;
      }
      continue;
    }
    if (fetches_in_flight_ >= config_.tx_fetch_window) {
      return;
    }
    while (wr->next_fetch < wr->send_pkts && fetches_in_flight_ < config_.tx_fetch_window) {
      const uint32_t idx = wr->next_fetch++;
      if (wr->req.kind == WorkRequest::Kind::kRead) {
        wr->ready[idx] = FrameBuf{};  // read requests carry no payload
        continue;
      }
      const uint32_t chunk = wr->ChunkLen(idx, pmtu_payload_);
      if (!wr->req.inline_data.empty() || chunk == 0) {
        const uint8_t* base = wr->req.inline_data.data() + static_cast<size_t>(idx) * pmtu_payload_;
        wr->ready[idx] = FrameBuf::Copy(ByteSpan(base, chunk));
        continue;
      }
      ++fetches_in_flight_;
      const VirtAddr src = wr->req.local_addr + static_cast<VirtAddr>(idx) * pmtu_payload_;
      dma_.Read(src, chunk, [this, wr, idx](Result<FrameBuf> data) {
        --fetches_in_flight_;
        if (!data.ok()) {
          STROM_LOG(kError) << "TX payload fetch failed: " << data.status();
          FailPayloadFetch(wr, data.status());
        } else {
          wr->ready[idx] = std::move(*data);
        }
        PumpTx();
      }, wr->req.trace);
    }
  }
}

bool RoceStack::TrySendNextDataPacket() {
  // Retransmissions take precedence over new data.
  if (!retransmit_queue_.empty()) {
    OutstandingPacket& desc = retransmit_queue_.front();
    FrameBuf payload;
    if (desc.opcode == IbOpcode::kReadRequest || desc.len == 0) {
      // no payload
    } else if (!desc.wr->req.inline_data.empty()) {
      const uint8_t* base = desc.wr->req.inline_data.data() + desc.offset;
      payload = FrameBuf::Copy(ByteSpan(base, desc.len));
    } else if (retransmit_payload_.has_value()) {
      payload = std::move(*retransmit_payload_);
      retransmit_payload_.reset();
    } else {
      if (!retransmit_fetch_pending_) {
        retransmit_fetch_pending_ = true;
        const uint64_t epoch = retransmit_epoch_;
        dma_.Read(desc.wr->req.local_addr + desc.offset, desc.len,
                  [this, epoch](Result<FrameBuf> data) {
                    retransmit_fetch_pending_ = false;
                    if (epoch == retransmit_epoch_ && data.ok()) {
                      retransmit_payload_ = std::move(*data);
                    }
                    // Stale epoch: the queue was rebuilt; PumpTx re-fetches
                    // for whatever is at the front now.
                    PumpTx();
                  }, desc.wr->req.trace);
      }
      return false;
    }

    QpState& qp = Qp(desc.wr->req.qpn);
    RocePacket pkt;
    pkt.src_ip = local_ip_;
    pkt.dst_ip = qp.remote_ip;
    pkt.bth.opcode = desc.opcode;
    pkt.bth.dest_qp = qp.remote_qpn;
    pkt.bth.psn = desc.psn;
    pkt.bth.ack_request = true;  // force a fresh cumulative ACK
    if (OpcodeHasReth(desc.opcode)) {
      RethHeader reth;
      reth.virt_addr = desc.remote_addr;
      reth.dma_length = desc.wr->req.length;
      pkt.reth = reth;
    }
    pkt.ecn_capable = config_.ecn_capable;
    pkt.payload = std::move(payload);
    pkt.trace = desc.wr->req.trace;
    ++counters_.retransmitted_packets;
    retransmit_queue_.pop_front();
    EmitFrame(pkt);
    return true;
  }

  if (wr_queue_.empty()) {
    return false;
  }
  WrPtr wr;
  if (!config_.dcqcn.enable) {
    // Legacy path: strict FIFO, the front WR blocks the queue until its next
    // chunk is fetched. Byte-identical to the uncontrolled stack.
    wr = wr_queue_.front();
    if (wr->ready.find(wr->next_send) == wr->ready.end()) {
      return false;  // waiting for the payload fetch
    }
  } else {
    // DCQCN pacing: pick the first pacing-eligible, fetch-ready WR that is
    // the earliest WR of its QP in the queue (per-QP PSN order preserved;
    // rate-limited QPs no longer head-of-line-block other QPs).
    SimTime earliest = 0;
    bool deferred = false;
    const uint64_t scan_epoch = ++pacing_scan_epoch_;
    for (WrPtr& cand : wr_queue_) {
      const Qpn qpn = cand->req.qpn;
      QpState& cand_qp = Qp(qpn);
      if (cand_qp.pacing_scan_epoch == scan_epoch) {
        continue;  // a WR of this QP ahead of it must go first
      }
      cand_qp.pacing_scan_epoch = scan_epoch;
      if (cand->ready.find(cand->next_send) == cand->ready.end()) {
        continue;  // fetch pending; let other QPs proceed
      }
      MaybeRecoverRate(qpn, cand_qp.cc);
      if (cand_qp.cc.next_allowed > sim_.now()) {
        deferred = true;
        if (earliest == 0 || cand_qp.cc.next_allowed < earliest) {
          earliest = cand_qp.cc.next_allowed;
        }
        continue;
      }
      wr = cand;
      break;
    }
    if (wr == nullptr) {
      if (deferred) {
        // Everything sendable is rate-limited: wake the pump when the
        // earliest pacing cursor expires (deduplicated across calls).
        ++counters_.pacing_deferrals;
        if (pacing_wakeup_at_ <= sim_.now() || earliest < pacing_wakeup_at_) {
          pacing_wakeup_at_ = earliest;
          if (pacing_timer_.valid()) {
            // Physically move the pending wake instead of stacking a second
            // event: the superseded later wake would only have re-entered
            // this pump and found the cursor already serviced.
            sim_.RescheduleAt(pacing_timer_, earliest);
          } else {
            pacing_timer_ = sim_.ScheduleCancellableAt(earliest, [this] { PumpTx(); });
          }
        }
      }
      return false;
    }
  }
  auto it = wr->ready.find(wr->next_send);
  const uint32_t idx = wr->next_send++;
  FrameBuf payload = std::move(it->second);
  wr->ready.erase(it);

  QpState& qp = Qp(wr->req.qpn);
  const IbOpcode opcode = DataOpcode(*wr, idx);
  const bool last = idx + 1 == wr->send_pkts;

  RocePacket pkt;
  pkt.src_ip = local_ip_;
  pkt.dst_ip = qp.remote_ip;
  pkt.ecn_capable = config_.ecn_capable;
  pkt.bth.opcode = opcode;
  pkt.bth.dest_qp = qp.remote_qpn;
  pkt.trace = wr->req.trace;
  pkt.bth.ack_request =
      !wr->is_read_response &&
      (last || (idx + 1) % config_.ack_request_interval == 0);
  if (qp.ce_to_echo) {
    pkt.bth.becn = true;
    qp.ce_to_echo = false;
    ++counters_.tx_becn;
    if (flow_stats_ != nullptr) {
      flow_stats_->OnBecnTx(sim_.now(), host_index_, wr->req.qpn);
    }
  }

  if (wr->is_read_response) {
    pkt.bth.psn = PsnAdd(wr->first_psn, idx);
    if (OpcodeHasAeth(opcode)) {
      AethHeader aeth;
      aeth.syndrome = AckSyndrome::kAck;
      aeth.msn = msn_table_.Entry(wr->req.qpn).msn;
      pkt.aeth = aeth;
    }
  } else {
    pkt.bth.psn =
        wr->req.kind == WorkRequest::Kind::kRead ? wr->first_psn : PsnAdd(wr->first_psn, idx);
    if (OpcodeHasReth(opcode)) {
      RethHeader reth;
      reth.virt_addr = wr->req.remote_addr;
      reth.dma_length = wr->req.length;
      pkt.reth = reth;
    }
    // Track for go-back-N retransmission.
    OutstandingPacket desc;
    desc.psn = pkt.bth.psn;
    desc.opcode = opcode;
    desc.remote_addr = wr->req.remote_addr;
    desc.offset = idx * pmtu_payload_;
    desc.len = static_cast<uint32_t>(payload.size());
    desc.wr = wr;
    const bool was_empty = qp.outstanding.empty();
    qp.outstanding.push_back(std::move(desc));
    if (was_empty) {
      timer_.Arm(wr->req.qpn);
    }
  }

  counters_.tx_bytes += payload.size();
  pkt.payload = std::move(payload);
  if (config_.dcqcn.enable) {
    ChargePacing(qp, pkt.WireSize() + kEthPhyOverhead);
  }
  EmitFrame(pkt);

  if (last) {
    FinishSending(wr);
  }
  return true;
}

void RoceStack::FinishSending(const WrPtr& wr) {
  if (config_.dcqcn.enable) {
    // QP-aware selection may finish a WR that is not at the front; erase it
    // in place and keep the fetched-prefix cursor consistent.
    auto it = std::find(wr_queue_.begin(), wr_queue_.end(), wr);
    STROM_CHECK(it != wr_queue_.end());
    const size_t pos = static_cast<size_t>(it - wr_queue_.begin());
    wr_queue_.erase(it);
    if (fetch_cursor_ > pos) {
      --fetch_cursor_;
    }
  } else {
    STROM_CHECK(!wr_queue_.empty() && wr_queue_.front() == wr);
    wr_queue_.pop_front();
    if (fetch_cursor_ > 0) {
      --fetch_cursor_;
    }
  }
  if (wr->is_read_response || wr->req.kind == WorkRequest::Kind::kRead) {
    return;  // responses need no ACK; reads complete via response data
  }
  Qp(wr->req.qpn).awaiting_ack.push_back(wr);
}

void RoceStack::FailPayloadFetch(const WrPtr& wr, const Status& status) {
  if (wr->is_read_response) {
    // Responder role: the response data cannot be produced. Drop the
    // response and tell the requester the operation failed fatally — no
    // retransmission can repair a failed host read.
    auto it = std::find(wr_queue_.begin(), wr_queue_.end(), wr);
    if (it != wr_queue_.end()) {
      wr_queue_.erase(it);
      fetch_cursor_ = 0;
    }
    SendAck(wr->req.qpn, wr->first_psn, AckSyndrome::kNakRemoteOperationalError,
            wr->req.trace);
    return;
  }
  // Requester role: the whole QP goes to Error (the flush completes `wr`,
  // which is still in wr_queue_, with `status`).
  ErrorQp(wr->req.qpn, status);
}

void RoceStack::CompleteWr(const WrPtr& wr, const Status& status) {
  if (wr->completed) {
    return;
  }
  wr->completed = true;
  const bool is_read = wr->req.kind == WorkRequest::Kind::kRead;
  if (is_read) {
    ++counters_.read_messages_completed;
  } else if (!wr->is_read_response) {
    ++counters_.write_messages_completed;
  }
  if (!wr->is_read_response) {
    Histogram* hist = is_read ? read_latency_us_ : write_latency_us_;
    if (hist != nullptr && status.ok()) {
      hist->Observe(double(sim_.now() - wr->posted_at) / 1e6);
    }
    if (flow_stats_ != nullptr && status.ok()) {
      flow_stats_->OnCompletion(sim_.now(), host_index_, wr->req.qpn, wr->req.length,
                                double(sim_.now() - wr->posted_at) / 1e6);
    }
    if (wr->req.trace.sampled() && tracer_ != nullptr) {
      const char* name = "WRITE";
      switch (wr->req.kind) {
        case WorkRequest::Kind::kWrite:    name = "WRITE"; break;
        case WorkRequest::Kind::kRead:     name = "READ"; break;
        case WorkRequest::Kind::kRpc:      name = "RPC"; break;
        case WorkRequest::Kind::kRpcWrite: name = "RPC_WRITE"; break;
      }
      tracer_->Span(wr->req.trace, msg_track_, name, wr->posted_at, sim_.now());
    }
  }
  if (wr->req.on_complete) {
    wr->req.on_complete(status);
  }
}

void RoceStack::SendControlPacket(RocePacket pkt) {
  control_queue_.push_back(std::move(pkt));
  PumpTx();
}

void RoceStack::EmitFrame(const RocePacket& pkt) {
  MacAddr dst_mac;
  STROM_CHECK(arp_.Lookup(pkt.dst_ip, &dst_mac))
      << "no ARP entry for " << IpToString(pkt.dst_ip);
  FrameBuf frame = EncodeRoceFrame(local_mac_, dst_mac, pkt);
  if (capture_ != nullptr) {
    capture_->WritePacket(capture_tx_if_, sim_.now(), frame,
                          pkt.trace.sampled() ? "trace_id=" + std::to_string(pkt.trace.id)
                                              : std::string());
  }
  ++counters_.tx_packets;
  if (pkt.bth.opcode == IbOpcode::kAck) {
    ++counters_.tx_acks;
    if (pkt.aeth.has_value() && pkt.aeth->syndrome != AckSyndrome::kAck) {
      ++counters_.tx_naks;
    }
  }
  if (flight_recorder_ != nullptr) {
    const SimTime now = sim_.now();
    flight_recorder_->Record(now, host_index_, FlightRecordType::kTx,
                             uint8_t(pkt.bth.opcode), pkt.bth.dest_qp, pkt.bth.psn,
                             uint32_t(frame.size()));
    if (pkt.bth.opcode == IbOpcode::kAck && pkt.aeth.has_value() &&
        pkt.aeth->syndrome != AckSyndrome::kAck) {
      flight_recorder_->Record(now, host_index_, FlightRecordType::kNak,
                               uint8_t(pkt.aeth->syndrome), pkt.bth.dest_qp, pkt.bth.psn,
                               0);
    }
    flight_recorder_->RecordFrame(now, host_index_, /*tx=*/true, frame);
  }

  // Fixed TX pipeline latency plus the store-and-forward ICRC pass (one cycle
  // per data word, paper §7). The order cursor keeps the pipeline FIFO.
  const SimTime words = static_cast<SimTime>(pkt.Words(config_.data_width));
  const SimTime latency = (config_.tx_pipeline_cycles + words) * config_.clock_ps;
  tx_order_cursor_ = std::max(tx_order_cursor_, sim_.now() + latency);
  if (pkt.trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(pkt.trace, tx_track_, std::string("tx:") + IbOpcodeName(pkt.bth.opcode),
                  sim_.now(), tx_order_cursor_);
  }
  sim_.ScheduleAt(tx_order_cursor_,
                  [this, epoch = crash_epoch_, f = std::move(frame),
                   trace = pkt.trace]() mutable {
                    // Frames still inside the TX pipeline when the stack
                    // crashed never reach the wire — even if the restart
                    // beat this event to the clock.
                    if (epoch != crash_epoch_) {
                      return;
                    }
                    if (send_frame_) {
                      send_frame_(std::move(f), trace);
                    }
                  });

  // The word-serial pipeline (II=1) accepts the next packet after `words`
  // cycles: this *is* line rate for the configured width.
  tx_busy_ = true;
  sim_.Schedule(words * config_.clock_ps, [this] {
    tx_busy_ = false;
    PumpTx();
  });
}

void RoceStack::PumpTx() {
  if (in_crash_) {
    return;
  }
  FetchPayloads();
  if (tx_busy_ || sim_.now() < paused_until_) {
    return;
  }
  if (!control_queue_.empty()) {
    RocePacket pkt = std::move(control_queue_.front());
    control_queue_.pop_front();
    EmitFrame(pkt);
    return;
  }
  TrySendNextDataPacket();
}

// ---------------------------------------------------------------------------
// RX path
// ---------------------------------------------------------------------------

void RoceStack::OnFrame(FrameBuf frame, TraceContext trace) {
  Result<RocePacket> parsed = ParseRoceFrame(frame);
  if (capture_ != nullptr) {
    std::string comment;
    if (!parsed.ok()) {
      comment = parsed.status().code() == StatusCode::kDataLoss ? "rx_drop=icrc"
                                                                : "rx_drop=malformed";
    }
    if (trace.sampled()) {
      if (!comment.empty()) {
        comment += ' ';
      }
      comment += "trace_id=" + std::to_string(trace.id);
    }
    capture_->WritePacket(capture_rx_if_, sim_.now(), frame, comment);
  }
  if (!parsed.ok()) {
    if (parsed.status().code() == StatusCode::kDataLoss) {
      ++counters_.icrc_drops;
    } else {
      ++counters_.malformed_drops;
    }
    return;
  }
  ++counters_.rx_packets;
  if (flight_recorder_ != nullptr) {
    const SimTime now = sim_.now();
    flight_recorder_->Record(now, host_index_, FlightRecordType::kRx,
                             uint8_t(parsed->bth.opcode), parsed->bth.dest_qp,
                             parsed->bth.psn, uint32_t(frame.size()));
    flight_recorder_->RecordFrame(now, host_index_, /*tx=*/false, frame);
  }
  parsed->trace = trace;
  // RX pipeline: parse stages + State Table FSM + store-and-forward ICRC.
  // The order cursor keeps the pipeline FIFO across packet sizes.
  const SimTime words = static_cast<SimTime>(parsed->Words(config_.data_width));
  const SimTime latency = (config_.rx_pipeline_cycles + words) * config_.clock_ps;
  rx_order_cursor_ = std::max(rx_order_cursor_, sim_.now() + latency);
  if (trace.sampled() && tracer_ != nullptr) {
    tracer_->Span(trace, rx_track_, std::string("rx:") + IbOpcodeName(parsed->bth.opcode),
                  sim_.now(), rx_order_cursor_);
  }
  sim_.ScheduleAt(rx_order_cursor_,
                  [this, epoch = crash_epoch_, pkt = std::move(*parsed)]() mutable {
                    // Packets inside the RX pipeline when the stack crashed
                    // die with it.
                    if (epoch != crash_epoch_) {
                      return;
                    }
                    ProcessPacket(std::move(pkt));
                  });
}

void RoceStack::ProcessPacket(RocePacket pkt) {
  const Qpn qpn = pkt.bth.dest_qp;
  if (!QpConnected(qpn)) {
    const auto tomb = stale_qps_.find(qpn);
    // Epoch fence: the QP existed before this stack crashed. The peer that
    // sent this never saw the crash — answer requests with a semantic NAK
    // carrying the new memory-region epoch instead of letting them silently
    // miss (or, worse, hit re-registered memory). ACK-class packets (incl.
    // stale-epoch NAKs from a peer that also crashed) are never answered:
    // fencing an ACK buys nothing and two restarted peers must not NAK each
    // other forever.
    if (tomb != stale_qps_.end() && pkt.bth.opcode != IbOpcode::kAck) {
      ++counters_.tx_stale_naks;
      RocePacket nak;
      nak.src_ip = local_ip_;
      nak.dst_ip = tomb->second.remote_ip;
      nak.bth.opcode = IbOpcode::kAck;
      nak.bth.dest_qp = tomb->second.remote_qpn;
      nak.bth.psn = pkt.bth.psn;
      AethHeader aeth;
      aeth.syndrome = AckSyndrome::kNakStaleEpoch;
      aeth.msn = uint32_t(mr_epoch_) & 0xFFFFFF;
      nak.aeth = aeth;
      nak.trace = pkt.trace;
      SendControlPacket(std::move(nak));
      return;
    }
    ++counters_.unknown_qp_drops;
    return;
  }
  if (state_table_.Entry(qpn).phase == QpPhase::kError) {
    // An errored QP neither responds nor accepts: everything is dropped
    // until ResetQp + ConnectQp re-establish it.
    ++counters_.qp_error_drops;
    return;
  }
  // Congestion signaling happens before opcode dispatch so both directions
  // participate: a CE mark on *any* packet (request or response stream) is
  // echoed in the BECN bit of this QP's next transmission, and a BECN on any
  // packet is this stack's CNP.
  if (pkt.ecn_ce) {
    ++counters_.rx_ecn_ce;
    Qp(qpn).ce_to_echo = true;
    if (flow_stats_ != nullptr) {
      flow_stats_->OnCe(sim_.now(), host_index_, qpn);
    }
  }
  if (pkt.bth.becn) {
    ++counters_.rx_cnp;
    OnCnp(qpn);
    const QpState::Dcqcn& cc = Qp(qpn).cc;
    if (flight_recorder_ != nullptr) {
      flight_recorder_->Record(sim_.now(), host_index_, FlightRecordType::kCnp,
                               uint8_t(pkt.bth.opcode), qpn, pkt.bth.psn,
                               uint32_t(uint64_t(cc.rate_bps) >> 20));
    }
    if (flow_stats_ != nullptr) {
      flow_stats_->OnCnp(sim_.now(), host_index_, qpn, cc.rate_bps, cc.alpha);
    }
  }
  switch (pkt.bth.opcode) {
    case IbOpcode::kAck:
      HandleAck(pkt);
      return;
    case IbOpcode::kReadRespFirst:
    case IbOpcode::kReadRespMiddle:
    case IbOpcode::kReadRespLast:
    case IbOpcode::kReadRespOnly:
      HandleReadResponse(pkt);
      return;
    default:
      HandleResponderPacket(pkt);
      return;
  }
}

void RoceStack::HandleResponderPacket(const RocePacket& pkt) {
  const Qpn qpn = pkt.bth.dest_qp;
  StateTableEntry& st = state_table_.Entry(qpn);

  const PsnCheck check = state_table_.CheckRequestPsn(qpn, pkt.bth.psn);
  if (check == PsnCheck::kInvalid) {
    ++counters_.psn_out_of_order_drops;
    if (st.nak_armed) {
      st.nak_armed = false;
      QpState& qp = Qp(qpn);
      RocePacket nak;
      nak.src_ip = local_ip_;
      nak.dst_ip = qp.remote_ip;
      nak.bth.opcode = IbOpcode::kAck;
      nak.bth.dest_qp = qp.remote_qpn;
      nak.bth.psn = st.epsn;  // the PSN we expect: retransmit from here
      AethHeader aeth;
      aeth.syndrome = AckSyndrome::kNakSequenceError;
      aeth.msn = msn_table_.Entry(qpn).msn;
      nak.aeth = aeth;
      nak.trace = pkt.trace;
      SendControlPacket(std::move(nak));
    }
    return;
  }
  if (check == PsnCheck::kDuplicate) {
    ++counters_.duplicate_psn_packets;
    if (OpcodeIsWriteLike(pkt.bth.opcode)) {
      // Re-ACK so a requester whose ACK was lost can make progress.
      SendAck(qpn, pkt.bth.psn, AckSyndrome::kAck, pkt.trace);
    } else if (pkt.bth.opcode == IbOpcode::kReadRequest) {
      HandleReadRequest(pkt);  // reads are idempotent: re-execute
    }
    return;
  }

  // Expected PSN: consume it.
  st.nak_armed = true;
  const Psn prev_epsn = st.epsn;
  if (pkt.bth.opcode == IbOpcode::kReadRequest) {
    STROM_CHECK(pkt.reth.has_value());
    st.epsn = PsnAdd(st.epsn, config_.PacketsForLength(pkt.reth->dma_length));
    AuditEpsnAdvance(qpn, prev_epsn, st.epsn);
    HandleReadRequest(pkt);
    return;
  }
  st.epsn = PsnAdd(st.epsn, 1);
  AuditEpsnAdvance(qpn, prev_epsn, st.epsn);

  if (OpcodeIsStrom(pkt.bth.opcode)) {
    HandleRpc(pkt);
    return;
  }
  HandleWritePayload(pkt);
}

void RoceStack::HandleWritePayload(const RocePacket& pkt) {
  const Qpn qpn = pkt.bth.dest_qp;
  MsnTableEntry& msn = msn_table_.Entry(qpn);
  counters_.rx_payload_bytes += pkt.payload.size();

  const IbOpcode op = pkt.bth.opcode;
  if (op == IbOpcode::kWriteFirst || op == IbOpcode::kWriteOnly) {
    STROM_CHECK(pkt.reth.has_value());
    msn.dma_addr = pkt.reth->virt_addr;
    msn.bytes_remaining = pkt.reth->dma_length;
    msn.in_message = op == IbOpcode::kWriteFirst;
  }
  const VirtAddr target = msn.dma_addr;
  msn.dma_addr += pkt.payload.size();
  msn.bytes_remaining -= std::min<uint64_t>(msn.bytes_remaining, pkt.payload.size());

  const bool ends = OpcodeEndsMessage(op);
  if (!pkt.payload.empty()) {
    Status wst = dma_.Write(target, pkt.payload, nullptr, pkt.trace);
    if (!wst.ok()) {
      // The host write was rejected: nothing was placed, so ACKing would
      // falsely promise the data landed. Surface a fatal NAK instead —
      // retransmission cannot repair a failing DMA path.
      SendAck(qpn, pkt.bth.psn, AckSyndrome::kNakRemoteOperationalError, pkt.trace);
      return;
    }
  }
  if (stream_tap_) {
    stream_tap_(qpn, pkt.payload, ends);
  }
  if (ends) {
    msn.in_message = false;
    ++msn.msn;
  }
  if (ends || pkt.bth.ack_request) {
    SendAck(qpn, pkt.bth.psn, AckSyndrome::kAck, pkt.trace);
  }
}

void RoceStack::HandleReadRequest(const RocePacket& pkt) {
  STROM_CHECK(pkt.reth.has_value());
  // The responder streams the data back with the PSNs the requester
  // pre-calculated (paper §5.1 explains this constraint of read semantics).
  auto response = std::make_shared<PendingWr>();
  response->is_read_response = true;
  response->req.kind = WorkRequest::Kind::kWrite;  // payload-from-memory path
  response->req.qpn = pkt.bth.dest_qp;
  response->req.local_addr = pkt.reth->virt_addr;
  response->req.length = pkt.reth->dma_length;
  response->req.trace = pkt.trace;
  response->posted_at = sim_.now();
  response->first_psn = pkt.bth.psn;
  response->send_pkts = config_.PacketsForLength(pkt.reth->dma_length);
  response->psn_span = response->send_pkts;
  response->last_psn = PsnAdd(response->first_psn, response->psn_span - 1);
  wr_queue_.push_back(std::move(response));
  PumpTx();
}

void RoceStack::HandleRpc(const RocePacket& pkt) {
  const Qpn qpn = pkt.bth.dest_qp;
  MsnTableEntry& msn = msn_table_.Entry(qpn);
  counters_.rx_payload_bytes += pkt.payload.size();

  RpcDelivery delivery;
  delivery.qpn = qpn;
  delivery.payload = pkt.payload;
  delivery.trace = pkt.trace;

  const IbOpcode op = pkt.bth.opcode;
  if (op == IbOpcode::kRpcParams) {
    STROM_CHECK(pkt.reth.has_value());
    delivery.rpc_opcode = static_cast<uint32_t>(pkt.reth->virt_addr);
    delivery.is_params = true;
    delivery.message_length = pkt.reth->dma_length;
  } else {
    if (op == IbOpcode::kRpcWriteFirst || op == IbOpcode::kRpcWriteOnly) {
      STROM_CHECK(pkt.reth.has_value());
      msn.rpc_opcode = static_cast<uint32_t>(pkt.reth->virt_addr);
      msn.rpc_in_flight = true;
      delivery.message_length = pkt.reth->dma_length;
    }
    delivery.rpc_opcode = msn.rpc_opcode;
    delivery.first = OpcodeStartsMessage(op);
    delivery.last = OpcodeEndsMessage(op);
  }

  const bool ends = OpcodeEndsMessage(op);
  if (ends) {
    msn.rpc_in_flight = false;
    ++msn.msn;
  }

  const bool matched = rpc_handler_ && rpc_handler_(std::move(delivery));
  if (matched) {
    ++counters_.rpc_dispatched;
    if (ends || pkt.bth.ack_request) {
      SendAck(qpn, pkt.bth.psn, AckSyndrome::kAck, pkt.trace);
    }
  } else {
    // No deployed kernel matched the RPC op-code: report an error to the
    // requesting node (paper §5.1).
    ++counters_.rpc_unmatched;
    SendAck(qpn, pkt.bth.psn, AckSyndrome::kNakInvalidRequest, pkt.trace);
  }
}

void RoceStack::SendAck(Qpn local_qpn, Psn psn, AckSyndrome syndrome, TraceContext trace) {
  QpState& qp = Qp(local_qpn);
  RocePacket ack;
  ack.src_ip = local_ip_;
  ack.dst_ip = qp.remote_ip;
  ack.bth.opcode = IbOpcode::kAck;
  ack.bth.dest_qp = qp.remote_qpn;
  ack.bth.psn = psn;
  if (qp.ce_to_echo) {
    ack.bth.becn = true;
    qp.ce_to_echo = false;
    ++counters_.tx_becn;
    if (flow_stats_ != nullptr) {
      flow_stats_->OnBecnTx(sim_.now(), host_index_, local_qpn);
    }
  }
  ack.trace = trace;
  AethHeader aeth;
  aeth.syndrome = syndrome;
  aeth.msn = msn_table_.Entry(local_qpn).msn;
  ack.aeth = aeth;
  SendControlPacket(std::move(ack));
}

// ---------------------------------------------------------------------------
// Requester-side response handling
// ---------------------------------------------------------------------------

void RoceStack::AdvanceCumulativeAck(Qpn qpn, Psn acked_psn) {
  QpState& qp = Qp(qpn);
  StateTableEntry& st = state_table_.Entry(qpn);
  qp.consecutive_retries = 0;  // any ACK/NAK is proof of responder life

  while (!qp.outstanding.empty() &&
         PsnDistance(qp.outstanding.front().psn, acked_psn) >= 0) {
    qp.outstanding.pop_front();
  }
  const Psn prev_oldest = st.oldest_unacked;
  if (PsnDistance(st.oldest_unacked, PsnAdd(acked_psn, 1)) > 0) {
    st.oldest_unacked = PsnAdd(acked_psn, 1);
  }
  if (auditor_ != nullptr) {
    // Cumulative-ACK window may only move forward; a regression means the
    // go-back-N bookkeeping re-opened already-acknowledged PSNs.
    auditor_->NoteCheck();
    if (PsnDistance(prev_oldest, st.oldest_unacked) < 0) {
      auditor_->Violation("host" + std::to_string(host_index_) + " qp" +
                          std::to_string(qpn) + " oldest_unacked regressed: " +
                          std::to_string(prev_oldest) + " -> " +
                          std::to_string(st.oldest_unacked));
    }
  }

  // Complete fully-sent, fully-acked writes and RPCs in order.
  while (!qp.awaiting_ack.empty()) {
    const WrPtr& wr = qp.awaiting_ack.front();
    if (PsnDistance(wr->last_psn, acked_psn) < 0) {
      break;
    }
    CompleteWr(wr, Status::Ok());
    qp.awaiting_ack.pop_front();
  }

  // The timer must stay armed while reads are pending even if every request
  // descriptor has been retired: their response streams can still be lost.
  if (qp.outstanding.empty() && multi_queue_.Empty(qpn)) {
    timer_.Cancel(qpn);
  } else {
    timer_.Arm(qpn);  // progress: reset timeout and backoff
  }
}

void RoceStack::HandleAck(const RocePacket& pkt) {
  STROM_CHECK(pkt.aeth.has_value());
  const Qpn qpn = pkt.bth.dest_qp;
  ++counters_.rx_acks;

  switch (pkt.aeth->syndrome) {
    case AckSyndrome::kAck:
      AdvanceCumulativeAck(qpn, pkt.bth.psn);
      return;
    case AckSyndrome::kNakSequenceError:
      ++counters_.rx_naks;
      // The BTH PSN of the NAK is the responder's ePSN: everything before it
      // arrived; retransmit from there.
      AdvanceCumulativeAck(qpn, PsnAdd(pkt.bth.psn, kPsnMask));  // psn-1
      RetransmitFrom(qpn, pkt.bth.psn);
      return;
    case AckSyndrome::kNakInvalidRequest: {
      ++counters_.rx_naks;
      // Unmatched RPC op-code (or bad request): fail the message covering
      // this PSN *before* the cumulative advance would complete it as OK
      // (CompleteWr is idempotent, so the advance below is then a no-op for
      // the failed request).
      QpState& qp = Qp(qpn);
      for (const WrPtr& wr : qp.awaiting_ack) {
        if (PsnDistance(wr->first_psn, pkt.bth.psn) >= 0 &&
            PsnDistance(pkt.bth.psn, wr->last_psn) >= 0) {
          CompleteWr(wr, InvalidArgumentError("remote NAK: invalid request / unmatched RPC"));
        }
      }
      AdvanceCumulativeAck(qpn, pkt.bth.psn);
      return;
    }
    case AckSyndrome::kNakRemoteOperationalError:
      ++counters_.rx_naks;
      ++counters_.rx_operational_errors;
      // The responder could not execute the operation (its DMA path failed).
      // Fatal for the connection: no retransmission can repair it.
      ErrorQp(qpn, InternalError("remote NAK: responder operational error"));
      return;
    case AckSyndrome::kNakStaleEpoch:
      ++counters_.rx_naks;
      ++counters_.rx_stale_naks;
      // The peer crashed and restarted: our QP pair and any memory
      // registrations we hold are from a dead epoch. Fence immediately —
      // retransmitting can only draw the same NAK. Liveness-driven
      // reconnection (ResetQp + ConnectQp with fresh PSNs) recovers the pair.
      ErrorQp(qpn, FailedPreconditionError("remote NAK: stale epoch (peer restarted)"));
      return;
    default:
      ++counters_.rx_naks;
      return;
  }
}

void RoceStack::HandleReadResponse(const RocePacket& pkt) {
  const Qpn qpn = pkt.bth.dest_qp;
  QpState& qp = Qp(qpn);
  if (multi_queue_.Empty(qpn)) {
    ++counters_.duplicate_psn_packets;  // stale response after completion
    return;
  }
  ReadContext& ctx = multi_queue_.Head(qpn);
  const int32_t idx = PsnDistance(ctx.first_psn, pkt.bth.psn);
  const uint32_t expected_idx = ctx.bytes_placed / pmtu_payload_;
  if (idx < 0 || static_cast<uint32_t>(idx) != expected_idx) {
    // Gap or duplicate within the response stream; drop and let the
    // retransmission timer re-issue the read request.
    STROM_LOG(kDebug) << "read-resp drop psn=" << pkt.bth.psn << " idx=" << idx
                      << " expected=" << expected_idx << " placed=" << ctx.bytes_placed;
    ++counters_.psn_out_of_order_drops;
    return;
  }

  qp.consecutive_retries = 0;  // response data is forward progress
  counters_.rx_payload_bytes += pkt.payload.size();
  const VirtAddr target = ctx.local_addr + ctx.bytes_placed;
  ctx.bytes_placed += static_cast<uint32_t>(pkt.payload.size());
  const bool last = OpcodeEndsMessage(pkt.bth.opcode);
  if (!last) {
    // Response data streaming in is progress: restart the retransmission
    // timer so a long response (many packets queued behind other reads)
    // does not spuriously time out mid-stream.
    timer_.Arm(qpn);
  }

  // Locate the read-request WR for completion before popping state.
  WrPtr read_wr;
  if (last) {
    auto pending_it = pending_reads_.find(ctx.wr_id);
    if (pending_it != pending_reads_.end()) {
      read_wr = pending_it->second;
      pending_reads_.erase(pending_it);
    }
    STROM_CHECK_EQ(ctx.bytes_placed, ctx.length);
    multi_queue_.PopHead(qpn);
    // Drop the request descriptor: the read is complete.
    std::erase_if(qp.outstanding, [&](const OutstandingPacket& d) {
      return d.opcode == IbOpcode::kReadRequest && d.psn == ctx.first_psn;
    });
    // Implicit ack: response proves the request arrived.
    if (qp.outstanding.empty() && multi_queue_.Empty(qpn)) {
      timer_.Cancel(qpn);
    } else {
      timer_.Arm(qpn);
    }
  }

  if (!pkt.payload.empty()) {
    Status wst = dma_.Write(target, pkt.payload, [this, read_wr, last](Status st) {
      if (last && read_wr) {
        CompleteWr(read_wr, st);
      }
      PumpTx();  // multi-queue slot freed: retry blocked reads
    }, pkt.trace);
    if (!wst.ok()) {
      // Local DMA rejected the response data: the read cannot complete and
      // the placement stream is now broken — fatal for the QP.
      if (read_wr) {
        CompleteWr(read_wr, wst);
      }
      ErrorQp(qpn, wst);
      return;
    }
  } else if (last && read_wr) {
    CompleteWr(read_wr, Status::Ok());
  }
}

// ---------------------------------------------------------------------------
// Reliability
// ---------------------------------------------------------------------------

void RoceStack::AuditEpsnAdvance(Qpn qpn, Psn prev_epsn, Psn new_epsn) {
  if (auditor_ == nullptr) {
    return;
  }
  auditor_->NoteCheck();
  if (PsnDistance(prev_epsn, new_epsn) <= 0) {
    auditor_->Violation("host" + std::to_string(host_index_) + " qp" +
                        std::to_string(qpn) + " epsn did not advance: " +
                        std::to_string(prev_epsn) + " -> " + std::to_string(new_epsn));
  }
}

void RoceStack::RetransmitFrom(Qpn qpn, Psn psn) {
  QpState& qp = Qp(qpn);
  retransmit_queue_.clear();
  retransmit_payload_.reset();
  ++retransmit_epoch_;
  for (const OutstandingPacket& desc : qp.outstanding) {
    if (PsnDistance(psn, desc.psn) >= 0) {
      retransmit_queue_.push_back(desc);
    }
  }
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Record(sim_.now(), host_index_, FlightRecordType::kRetransmit, 0,
                             qpn, psn, uint32_t(retransmit_queue_.size()));
  }
  if (flow_stats_ != nullptr) {
    flow_stats_->OnRetransmit(sim_.now(), host_index_, qpn);
  }
  if (!retransmit_queue_.empty()) {
    timer_.RearmBackoff(qpn);
  }
  PumpTx();
}

void RoceStack::OnTimeout(Qpn qpn) {
  QpState& qp = Qp(qpn);
  const bool reads_pending = !multi_queue_.Empty(qpn);
  if (qp.outstanding.empty() && !reads_pending) {
    return;
  }
  ++counters_.timeouts;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Record(sim_.now(), host_index_, FlightRecordType::kTimeout, 0,
                             qpn, state_table_.Entry(qpn).oldest_unacked,
                             uint32_t(qp.consecutive_retries + 1));
  }
  if (flow_stats_ != nullptr) {
    flow_stats_->OnTimeout(sim_.now(), host_index_, qpn);
  }
  if (++qp.consecutive_retries > config_.retry_limit) {
    ErrorQp(qpn, UnavailableError("retry budget exhausted (" +
                                  std::to_string(config_.retry_limit) +
                                  " consecutive timeouts)"));
    return;
  }
  // For reads that timed out mid-response, rewind placement progress: the
  // responder will re-send the whole response.
  if (reads_pending) {
    multi_queue_.Head(qpn).bytes_placed = 0;
  }

  if (qp.outstanding.empty()) {
    // The head read's request descriptor was retired by a later cumulative
    // ACK, but its response stream was lost: re-issue the read request.
    ReadContext& ctx = multi_queue_.Head(qpn);
    auto it = pending_reads_.find(ctx.wr_id);
    if (it == pending_reads_.end()) {
      return;
    }
    OutstandingPacket desc;
    desc.psn = ctx.first_psn;
    desc.opcode = IbOpcode::kReadRequest;
    desc.remote_addr = it->second->req.remote_addr;
    desc.len = ctx.length;
    desc.wr = it->second;
    retransmit_queue_.clear();
    retransmit_payload_.reset();
    ++retransmit_epoch_;
    retransmit_queue_.push_back(std::move(desc));
    timer_.RearmBackoff(qpn);
    PumpTx();
    return;
  }
  RetransmitFrom(qpn, state_table_.Entry(qpn).oldest_unacked);
}

// ---------------------------------------------------------------------------
// Error state machine
// ---------------------------------------------------------------------------

void RoceStack::FlushQp(Qpn qpn, const Status& status) {
  QpState& qp = Qp(qpn);
  timer_.Cancel(qpn);

  // TX engine: any retransmit state or queued message belonging to this QP
  // must not reach the wire.
  retransmit_payload_.reset();
  ++retransmit_epoch_;  // orphan in-flight retransmit payload fetches
  std::erase_if(retransmit_queue_,
                [&](const OutstandingPacket& d) { return d.wr->req.qpn == qpn; });
  for (auto it = wr_queue_.begin(); it != wr_queue_.end();) {
    const WrPtr& wr = *it;
    if (wr->req.qpn != qpn) {
      ++it;
      continue;
    }
    if (!wr->is_read_response && !wr->completed) {
      ++counters_.wrs_flushed;
      CompleteWr(wr, status);
    }
    it = wr_queue_.erase(it);
  }
  fetch_cursor_ = 0;  // conservatively rescan after mid-queue erasures

  qp.outstanding.clear();
  for (const WrPtr& wr : qp.awaiting_ack) {
    if (!wr->completed) {
      ++counters_.wrs_flushed;
      CompleteWr(wr, status);
    }
  }
  qp.awaiting_ack.clear();

  // Outstanding reads: drain this QP's multi-queue contexts and complete
  // their work requests in error.
  while (!multi_queue_.Empty(qpn)) {
    const uint64_t token = multi_queue_.Head(qpn).wr_id;
    multi_queue_.PopHead(qpn);
    auto it = pending_reads_.find(token);
    if (it != pending_reads_.end()) {
      WrPtr wr = it->second;
      pending_reads_.erase(it);
      if (!wr->completed) {
        ++counters_.wrs_flushed;
        CompleteWr(wr, status);
      }
    }
  }
  qp.consecutive_retries = 0;
  PumpTx();  // other QPs' traffic continues
}

void RoceStack::ErrorQp(Qpn qpn, const Status& status) {
  if (!QpConnected(qpn)) {
    return;
  }
  StateTableEntry& st = state_table_.Entry(qpn);
  if (st.phase == QpPhase::kError) {
    return;
  }
  st.phase = QpPhase::kError;
  ++counters_.qp_errors;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Record(sim_.now(), host_index_, FlightRecordType::kQpState, 0,
                             qpn, st.oldest_unacked, /*aux=*/1);
  }
  STROM_LOG(kWarning) << "QP " << qpn << " -> Error: " << status;
  FlushQp(qpn, status);
  if (qp_error_handler_) {
    qp_error_handler_(qpn, status);
  }
}

Status RoceStack::ResetQp(Qpn qpn) {
  if (!QpConnected(qpn)) {
    // Idempotent: a crash already wiped this QP (stale_qps_ tombstone), or it
    // was never connected. Either way the post-reset state is what the
    // caller wants, and the reconnect path must not fail on it.
    return Status::Ok();
  }
  ++counters_.qp_resets;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Record(sim_.now(), host_index_, FlightRecordType::kQpState, 0,
                             qpn, state_table_.Entry(qpn).oldest_unacked, /*aux=*/0);
  }
  FlushQp(qpn, UnavailableError("QP reset"));
  state_table_.Deactivate(qpn);
  msn_table_.Entry(qpn) = MsnTableEntry{};
  qps_[qpn] = QpState{};
  return Status::Ok();
}

void RoceStack::Crash() {
  ++counters_.crashes;
  in_crash_ = true;
  // Census the timers armed at the crash instant, then mass-cancel: the
  // timer slab must never fire a callback into wiped QP state. The count is
  // exported as roce.timers_cancelled_at_crash.
  std::vector<Qpn> connected;
  qps_.ForEach([&connected](Qpn qpn, const QpState& qp) {
    if (qp.connected) {
      connected.push_back(qpn);
    }
  });
  // QpnMap iterates in probe-slot order; sort so the flush (and the user
  // completions it fires) runs in QPN order at any thread count.
  std::sort(connected.begin(), connected.end());
  for (Qpn qpn : connected) {
    if (timer_.IsArmed(qpn)) {
      ++counters_.timers_cancelled_at_crash;
    }
  }
  if (sim_.TimerPending(pacing_timer_)) {
    ++counters_.timers_cancelled_at_crash;
  }
  if (sim_.TimerPending(pause_timer_)) {
    ++counters_.timers_cancelled_at_crash;
  }
  // Fail-fast gate before flushing: completion callbacks fired by the flush
  // may try to post follow-up work, which must be rejected with an errored
  // completion (exactly one terminal state), not queued into the corpse.
  for (Qpn qpn : connected) {
    state_table_.Entry(qpn).phase = QpPhase::kError;
  }
  const Status crashed = UnavailableError("local crash");
  for (Qpn qpn : connected) {
    FlushQp(qpn, crashed);  // cancels the QP's retransmission timer too
    // Tombstone for epoch fencing, then wipe the pair completely.
    QpState& qp = qps_[qpn];
    stale_qps_[qpn] = StaleQp{qp.remote_qpn, qp.remote_ip};
    state_table_.Deactivate(qpn);
    msn_table_.Entry(qpn) = MsnTableEntry{};
    qps_[qpn] = QpState{};
  }
  // TX engine: everything still queued dies with the NIC. FlushQp erased the
  // requester-side entries per QP; read responses being produced for remote
  // requesters go down with the ship here.
  wr_queue_.clear();
  control_queue_.clear();
  retransmit_queue_.clear();
  retransmit_payload_.reset();
  ++retransmit_epoch_;
  retransmit_fetch_pending_ = false;
  fetches_in_flight_ = 0;  // their DMA completions are crash-fenced no-ops
  fetch_cursor_ = 0;
  sim_.Cancel(pacing_timer_);  // handles stay valid for post-restart re-arm
  sim_.Cancel(pause_timer_);
  pacing_wakeup_at_ = 0;
  paused_until_ = 0;
  tx_busy_ = false;
  rx_order_cursor_ = 0;
  tx_order_cursor_ = 0;
  ++crash_epoch_;  // orphan TX/RX pipeline events born before the crash
  ++mr_epoch_;     // post-restart registrations are a new epoch
  in_crash_ = false;
}

// ---------------------------------------------------------------------------
// Congestion control: DCQCN-style rate limiting + 802.3x pause
// ---------------------------------------------------------------------------

void RoceStack::OnCnp(Qpn qpn) {
  if (!config_.dcqcn.enable) {
    return;  // counted, but inert without the rate machine
  }
  QpState::Dcqcn& cc = Qp(qpn).cc;
  const double line = config_.LineRateBps();
  if (cc.rate_bps <= 0) {
    cc.rate_bps = line;
  }
  // Every CNP raises the congestion estimate; the multiplicative cut itself
  // is held off to once per rate_cut_interval (DCQCN's CNP timer).
  const double g = config_.dcqcn.alpha_gain;
  cc.alpha = (1.0 - g) * cc.alpha + g;
  if (cc.last_cut != 0 && sim_.now() - cc.last_cut < config_.dcqcn.rate_cut_interval) {
    return;
  }
  const double floor = line * config_.dcqcn.min_rate_fraction;
  cc.rate_bps = std::max(floor, cc.rate_bps * (1.0 - cc.alpha / 2.0));
  cc.last_cut = sim_.now();
  cc.last_increase = sim_.now();  // recovery restarts from the cut
  ++counters_.dcqcn_rate_cuts;
  if (flow_stats_ != nullptr) {
    flow_stats_->OnRateChange(sim_.now(), host_index_, qpn, /*cut=*/true, cc.rate_bps,
                              cc.alpha);
  }
}

void RoceStack::MaybeRecoverRate(Qpn qpn, QpState::Dcqcn& cc) {
  const double line = config_.LineRateBps();
  if (cc.rate_bps <= 0 || cc.rate_bps >= line) {
    return;  // uninitialized or already at line rate: nothing to recover
  }
  if (cc.last_increase == 0) {
    cc.last_increase = sim_.now();
    return;
  }
  const double g = config_.dcqcn.alpha_gain;
  bool increased = false;
  while (sim_.now() - cc.last_increase >= config_.dcqcn.increase_interval) {
    cc.last_increase += config_.dcqcn.increase_interval;
    cc.rate_bps += config_.dcqcn.additive_increase_fraction * line;
    cc.alpha *= (1.0 - g);
    ++counters_.dcqcn_rate_increases;
    increased = true;
    if (cc.rate_bps >= line) {
      cc.rate_bps = line;
      break;
    }
  }
  // One timeline event per recovery batch keeps the sampled DCQCN timeline
  // proportional to sim time rather than to the pump-scan rate.
  if (increased && flow_stats_ != nullptr) {
    flow_stats_->OnRateChange(sim_.now(), host_index_, qpn, /*cut=*/false, cc.rate_bps,
                              cc.alpha);
  }
}

void RoceStack::ChargePacing(QpState& qp, size_t wire_bytes) {
  QpState::Dcqcn& cc = qp.cc;
  const double line = config_.LineRateBps();
  if (cc.rate_bps <= 0) {
    cc.rate_bps = line;
  }
  if (cc.rate_bps >= line) {
    // At full line rate the TX serializer already enforces the spacing;
    // charging here too would double-count and halve throughput.
    cc.next_allowed = 0;
    return;
  }
  const SimTime spacing =
      static_cast<SimTime>(double(wire_bytes) * 8.0 * 1e12 / cc.rate_bps);
  cc.next_allowed = std::max(cc.next_allowed, sim_.now()) + spacing;
}

void RoceStack::Pause(uint16_t quanta) {
  if (quanta == 0) {
    // Explicit resume (xon).
    paused_until_ = sim_.now();
    PumpTx();
    return;
  }
  ++counters_.pfc_pause_events;
  // 802.3x: pause time is expressed in units of 512 bit-times at line rate.
  const SimTime until =
      sim_.now() +
      static_cast<SimTime>(double(quanta) * 512.0 * 1e12 / config_.LineRateBps());
  if (until > paused_until_) {
    paused_until_ = until;
    // Extending a pause moves the single resume wake to the new deadline;
    // the superseded earlier wake would have found paused_until_ still in
    // the future and pumped nothing.
    if (pause_timer_.valid()) {
      sim_.RescheduleAt(pause_timer_, until);
    } else {
      pause_timer_ = sim_.ScheduleCancellableAt(until, [this] { PumpTx(); });
    }
  }
}

}  // namespace strom
