// Multi-Queue (paper §4.1): tracks outstanding RDMA READ operations per queue
// pair. Logically one linked list per QP with runtime-variable length; the
// hardware implementation — reproduced here — is two fixed-size arrays in
// on-chip memory: one holding per-list metadata (head/tail), one holding all
// list elements, where each element stores the local host memory pointer (the
// target of the read), the next-element pointer, and a tail flag.
#ifndef SRC_ROCE_MULTI_QUEUE_H_
#define SRC_ROCE_MULTI_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/common/qpn_map.h"
#include "src/common/types.h"

namespace strom {

struct ReadContext {
  VirtAddr local_addr = 0;   // where response payload is placed
  uint32_t length = 0;       // total expected bytes
  Psn first_psn = 0;         // PSN of the first response packet
  uint32_t num_packets = 0;  // expected response packets
  uint32_t bytes_placed = 0; // progress
  uint64_t wr_id = 0;
};

class MultiQueue {
 public:
  MultiQueue(uint32_t num_qps, uint32_t total_elements);

  // Appends a read context to the QP's list; fails (returns false) when all
  // elements across all lists are in use — the combined length is fixed.
  bool Push(Qpn qpn, const ReadContext& ctx);

  bool Empty(Qpn qpn) const;
  // Head element of the QP's list (responses arrive in order per QP).
  ReadContext& Head(Qpn qpn);
  const ReadContext& Head(Qpn qpn) const;
  void PopHead(Qpn qpn);

  uint32_t Size(Qpn qpn) const;
  uint32_t free_elements() const { return free_count_; }
  uint32_t total_elements() const { return static_cast<uint32_t>(slots_.size()); }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFF;

  struct ListMeta {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    uint32_t count = 0;
  };
  struct Slot {
    ReadContext ctx;
    uint32_t next = kNil;
    bool is_tail = false;
    bool in_use = false;
  };

  uint32_t max_qps_;             // logical bound on QPN (configured depth)
  QpnMap<ListMeta> meta_;        // per-QP list metadata, pooled by QPN
  std::vector<Slot> slots_;      // second fixed array: all list elements
  uint32_t free_head_ = kNil;    // free list threaded through `next`
  uint32_t free_count_ = 0;
};

}  // namespace strom

#endif  // SRC_ROCE_MULTI_QUEUE_H_
