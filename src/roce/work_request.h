// Work requests posted to the NIC (by the host through the Controller, or by
// StRoM kernels through the roceMeta/roceData streams) and RPC deliveries
// handed from the RX path to the StRoM kernel dispatcher.
#ifndef SRC_ROCE_WORK_REQUEST_H_
#define SRC_ROCE_WORK_REQUEST_H_

#include <functional>

#include "src/common/bytes.h"
#include "src/common/frame_buf.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/telemetry/trace_context.h"

namespace strom {

struct WorkRequest {
  enum class Kind {
    kWrite,     // RDMA WRITE local_addr -> remote_addr
    kRead,      // RDMA READ  remote_addr -> local_addr
    kRpc,       // RDMA RPC: inline_data = parameters, remote_addr = RPC op-code
    kRpcWrite,  // RDMA RPC WRITE: payload streamed to remote kernel
  };

  Kind kind = Kind::kWrite;
  Qpn qpn = 0;
  VirtAddr local_addr = 0;   // data source (write) or destination (read)
  VirtAddr remote_addr = 0;  // remote VA; for RPC kinds: the RPC op-code
  uint32_t length = 0;
  // If non-empty, payload comes from this buffer instead of a DMA fetch
  // (StRoM kernels emit data that never touches host memory).
  ByteBuffer inline_data;
  uint64_t wr_id = 0;
  // Invoked when the message is network-complete: cumulative ACK received
  // (writes, RPCs) or all response data placed in host memory (reads).
  std::function<void(Status)> on_complete;
  // Telemetry span context; zero (unsampled) unless tracing is enabled.
  TraceContext trace;
};

// One RX-path delivery to the StRoM dispatcher (paper §5.1): either the
// parameter block of an RDMA RPC or one payload chunk of an RDMA RPC WRITE.
struct RpcDelivery {
  Qpn qpn = 0;
  uint32_t rpc_opcode = 0;
  // Shares the received wire frame's block (no copy between RX and kernel
  // dispatch; the engine copies once when feeding a kernel stream).
  FrameBuf payload;
  bool is_params = false;
  bool first = true;
  bool last = true;
  uint32_t message_length = 0;  // total RPC WRITE payload (from RETH)
  TraceContext trace;
};

}  // namespace strom

#endif  // SRC_ROCE_WORK_REQUEST_H_
