#include "src/roce/state_table.h"

#include "src/common/logging.h"

namespace strom {

Status StateTable::Activate(Qpn qpn, Psn initial_epsn, Psn initial_psn) {
  if (qpn >= max_qps_) {
    return OutOfRangeError("QPN beyond configured max_qps");
  }
  StateTableEntry& e = entries_[qpn];
  if (e.valid) {
    return AlreadyExistsError("QP already active");
  }
  e.valid = true;
  e.epsn = initial_epsn & kPsnMask;
  e.next_psn = initial_psn & kPsnMask;
  e.oldest_unacked = e.next_psn;
  e.nak_armed = true;
  return Status::Ok();
}

void StateTable::Deactivate(Qpn qpn) {
  StateTableEntry* e = entries_.Find(qpn);
  if (e != nullptr) {
    *e = StateTableEntry{};
  }
}

bool StateTable::IsActive(Qpn qpn) const {
  const StateTableEntry* e = entries_.Find(qpn);
  return e != nullptr && e->valid;
}

StateTableEntry& StateTable::Entry(Qpn qpn) {
  STROM_CHECK_LT(qpn, max_qps_);
  return entries_[qpn];
}

const StateTableEntry& StateTable::Entry(Qpn qpn) const {
  STROM_CHECK_LT(qpn, max_qps_);
  const StateTableEntry* e = entries_.Find(qpn);
  if (e != nullptr) {
    return *e;
  }
  static const StateTableEntry kDefault{};
  return kDefault;
}

PsnCheck StateTable::CheckRequestPsn(Qpn qpn, Psn psn) const {
  const StateTableEntry& e = Entry(qpn);
  const int32_t d = PsnDistance(e.epsn, psn);
  if (d == 0) {
    return PsnCheck::kExpected;
  }
  if (d < 0) {
    return PsnCheck::kDuplicate;
  }
  return PsnCheck::kInvalid;
}

}  // namespace strom
