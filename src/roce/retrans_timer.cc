#include "src/roce/retrans_timer.h"

#include <algorithm>

#include "src/common/logging.h"

namespace strom {

RetransTimer::RetransTimer(Simulator& sim, uint32_t num_qps, SimTime timeout,
                           SimTime timeout_max)
    : sim_(sim), timeout_(timeout), timeout_max_(timeout_max) {
  (void)num_qps;  // pooled per-QP entries; the configured depth no longer sizes storage
}

void RetransTimer::Arm(Qpn qpn) {
  Entry& e = timers_[qpn];
  e.current_timeout = timeout_;
  ArmAt(qpn, e);
}

void RetransTimer::RearmBackoff(Qpn qpn) {
  Entry& e = timers_[qpn];
  e.current_timeout = std::min(e.current_timeout * 2, timeout_max_);
  ArmAt(qpn, e);
}

void RetransTimer::Cancel(Qpn qpn) {
  Entry* e = timers_.Find(qpn);
  if (e == nullptr) {
    return;
  }
  if (sim_.Cancel(e->handle)) {
    ++timers_cancelled_;
    ++stale_expiries_eliminated_;
  }
}

void RetransTimer::ArmAt(Qpn qpn, Entry& e) {
  ++timers_armed_;
  if (e.handle.valid()) {
    if (sim_.TimerPending(e.handle)) {
      ++stale_expiries_eliminated_;  // the old deadline is moved, not orphaned
    }
    sim_.Reschedule(e.handle, e.current_timeout);
  } else {
    e.handle =
        sim_.ScheduleCancellable(e.current_timeout, [this, qpn] { Fire(qpn); });
  }
}

void RetransTimer::Fire(Qpn qpn) {
  ++expirations_;
  if (on_expiry_) {
    on_expiry_(qpn);
  }
}

}  // namespace strom
