#include "src/roce/retrans_timer.h"

#include <algorithm>

#include "src/common/logging.h"

namespace strom {

RetransTimer::RetransTimer(Simulator& sim, uint32_t num_qps, SimTime timeout,
                           SimTime timeout_max)
    : sim_(sim), timeout_(timeout), timeout_max_(timeout_max) {
  (void)num_qps;  // pooled per-QP entries; the configured depth no longer sizes storage
}

void RetransTimer::Arm(Qpn qpn) {
  Entry& e = timers_[qpn];
  e.armed = true;
  e.current_timeout = timeout_;
  ++e.generation;
  Schedule(qpn);
}

void RetransTimer::RearmBackoff(Qpn qpn) {
  Entry& e = timers_[qpn];
  e.armed = true;
  e.current_timeout = std::min(e.current_timeout * 2, timeout_max_);
  ++e.generation;
  Schedule(qpn);
}

void RetransTimer::Cancel(Qpn qpn) {
  Entry& e = timers_[qpn];
  e.armed = false;
  ++e.generation;
}

void RetransTimer::Schedule(Qpn qpn) {
  Entry& e = timers_[qpn];
  const uint64_t gen = e.generation;
  sim_.Schedule(e.current_timeout, [this, qpn, gen] {
    Entry* expired = timers_.Find(qpn);
    if (expired == nullptr || !expired->armed || expired->generation != gen) {
      return;  // cancelled or re-armed since
    }
    Entry& entry = *expired;
    entry.armed = false;
    ++expirations_;
    if (on_expiry_) {
      on_expiry_(qpn);
    }
  });
}

}  // namespace strom
