// State Table and MSN Table (paper §4.1, Fig 2/3).
//
// The State Table stores, per queue pair, the packet sequence numbers that
// define the valid / invalid / duplicate PSN regions — once for the NIC's
// responder role and once for its requester role. The MSN Table stores the
// message sequence number and the current DMA address, needed because for
// multi-packet writes only the first packet carries the address.
#ifndef SRC_ROCE_STATE_TABLE_H_
#define SRC_ROCE_STATE_TABLE_H_

#include <cstdint>

#include "src/common/qpn_map.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace strom {

// Classification of an incoming request PSN against the expected PSN.
enum class PsnCheck {
  kExpected,   // psn == ePSN: process and advance
  kDuplicate,  // behind ePSN within the duplicate window: re-ack, drop payload
  kInvalid,    // ahead of ePSN: NAK(sequence error) and drop
};

// QP lifecycle. kReady QPs move packets; a QP enters kError when its retry
// budget exhausts or a remote/DMA operational error surfaces, after which
// every queued and future work request completes in error until ResetQp +
// ConnectQp re-establish it with fresh PSNs.
enum class QpPhase {
  kReady,
  kError,
};

struct StateTableEntry {
  bool valid = false;
  QpPhase phase = QpPhase::kReady;
  // Responder role.
  Psn epsn = 0;              // expected PSN of the next request packet
  bool nak_armed = true;     // only one NAK per out-of-sequence episode
  // Requester role.
  Psn next_psn = 0;          // PSN assigned to the next outgoing request packet
  Psn oldest_unacked = 0;    // retransmission point
};

// Backed by a pooled QPN-keyed map (see src/common/qpn_map.h): memory is
// O(QPs actually touched), not O(max_qps). `max_qps` stays the logical bound
// Activate enforces, mirroring the hardware's configured table depth.
class StateTable {
 public:
  explicit StateTable(uint32_t max_qps) : max_qps_(max_qps) {}

  uint32_t capacity() const { return max_qps_; }
  size_t active_entries() const { return entries_.size(); }

  Status Activate(Qpn qpn, Psn initial_epsn, Psn initial_psn);
  // Returns the entry to its reset state so Activate can be called again
  // (the ResetQp / reconnect path). No-op on an inactive entry.
  void Deactivate(Qpn qpn);
  bool IsActive(Qpn qpn) const;

  StateTableEntry& Entry(Qpn qpn);
  const StateTableEntry& Entry(Qpn qpn) const;

  // The Fig 3 check: classifies `psn` against the entry's ePSN.
  PsnCheck CheckRequestPsn(Qpn qpn, Psn psn) const;

 private:
  uint32_t max_qps_;
  QpnMap<StateTableEntry> entries_;
};

struct MsnTableEntry {
  uint32_t msn = 0;           // completed message count (returned in AETH)
  VirtAddr dma_addr = 0;      // current write target for in-flight message
  uint64_t bytes_remaining = 0;
  bool in_message = false;    // between FIRST and LAST of a multi-packet write
  uint32_t rpc_opcode = 0;    // in-flight RPC WRITE stream target kernel
  bool rpc_in_flight = false;
};

class MsnTable {
 public:
  explicit MsnTable(uint32_t max_qps) : max_qps_(max_qps) {}

  MsnTableEntry& Entry(Qpn qpn) {
    STROM_CHECK_LT(qpn, max_qps_);
    return entries_[qpn];
  }
  const MsnTableEntry& Entry(Qpn qpn) const {
    STROM_CHECK_LT(qpn, max_qps_);
    const MsnTableEntry* e = entries_.Find(qpn);
    if (e != nullptr) {
      return *e;
    }
    static const MsnTableEntry kDefault{};
    return kDefault;
  }

 private:
  uint32_t max_qps_;
  QpnMap<MsnTableEntry> entries_;
};

}  // namespace strom

#endif  // SRC_ROCE_STATE_TABLE_H_
