#include "src/roce/multi_queue.h"

#include "src/common/logging.h"

namespace strom {

MultiQueue::MultiQueue(uint32_t num_qps, uint32_t total_elements)
    : max_qps_(num_qps), slots_(total_elements) {
  // Thread all slots onto the free list.
  for (uint32_t i = 0; i < total_elements; ++i) {
    slots_[i].next = (i + 1 < total_elements) ? i + 1 : kNil;
  }
  free_head_ = total_elements > 0 ? 0 : kNil;
  free_count_ = total_elements;
}

bool MultiQueue::Push(Qpn qpn, const ReadContext& ctx) {
  STROM_CHECK_LT(qpn, max_qps_);
  if (free_head_ == kNil) {
    return false;
  }
  const uint32_t idx = free_head_;
  free_head_ = slots_[idx].next;
  --free_count_;

  Slot& slot = slots_[idx];
  slot.ctx = ctx;
  slot.next = kNil;
  slot.is_tail = true;
  slot.in_use = true;

  ListMeta& list = meta_[qpn];
  if (list.head == kNil) {
    list.head = idx;
  } else {
    slots_[list.tail].next = idx;
    slots_[list.tail].is_tail = false;
  }
  list.tail = idx;
  ++list.count;
  return true;
}

bool MultiQueue::Empty(Qpn qpn) const {
  STROM_CHECK_LT(qpn, max_qps_);
  const ListMeta* list = meta_.Find(qpn);
  return list == nullptr || list->head == kNil;
}

ReadContext& MultiQueue::Head(Qpn qpn) {
  STROM_CHECK(!Empty(qpn)) << "multi-queue list empty for qp " << qpn;
  return slots_[meta_[qpn].head].ctx;
}

const ReadContext& MultiQueue::Head(Qpn qpn) const {
  STROM_CHECK(!Empty(qpn));
  return slots_[meta_.Find(qpn)->head].ctx;
}

void MultiQueue::PopHead(Qpn qpn) {
  STROM_CHECK(!Empty(qpn));
  ListMeta& list = meta_[qpn];
  const uint32_t idx = list.head;
  Slot& slot = slots_[idx];
  list.head = slot.is_tail ? kNil : slot.next;
  if (list.head == kNil) {
    list.tail = kNil;
  }
  --list.count;

  slot.in_use = false;
  slot.next = free_head_;
  free_head_ = idx;
  ++free_count_;
}

uint32_t MultiQueue::Size(Qpn qpn) const {
  STROM_CHECK_LT(qpn, max_qps_);
  const ListMeta* list = meta_.Find(qpn);
  return list == nullptr ? 0 : list->count;
}

}  // namespace strom
