#include "src/kernels/histogram.h"

#include "src/common/logging.h"

namespace strom {

ByteBuffer HistogramParams::Encode() const {
  ByteBuffer out(kEncodedSize, 0);
  StoreLe64(out.data(), target_addr);
  out[8] = bins_log2;
  out[9] = shift;
  out[10] = reset ? 1 : 0;
  return out;
}

std::optional<HistogramParams> HistogramParams::Decode(ByteSpan data) {
  if (data.size() < kEncodedSize) {
    return std::nullopt;
  }
  HistogramParams p;
  p.target_addr = LoadLe64(data.data());
  p.bins_log2 = data[8];
  p.shift = data[9];
  p.reset = data[10] != 0;
  if (p.bins_log2 > kHistogramMaxBinsLog2 || p.shift > 63) {
    return std::nullopt;
  }
  return p;
}

HistogramKernel::HistogramKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode), bins_(256, 0) {
  fsm_ = std::make_unique<LambdaStage>(sim, config.clock_ps, "histogram_fsm",
                                       [this] { return Fire(); });
  fsm_->WakeOnPush(streams_.qpn_in);
  fsm_->WakeOnPush(streams_.roce_data_in);
  fsm_->WakeOnPop(streams_.roce_meta_out);
  fsm_->WakeOnPop(streams_.roce_data_out);
}

uint64_t HistogramKernel::Fire() {
  if (!streams_.qpn_in.Empty() && !streams_.param_in.Empty()) {
    qpn_ = streams_.qpn_in.Pop();
    ByteBuffer raw = streams_.param_in.Pop();
    std::optional<HistogramParams> params = HistogramParams::Decode(raw);
    if (!params.has_value()) {
      STROM_LOG(kWarning) << "histogram: malformed parameters";
      return 1;
    }
    params_ = *params;
    respond_configured_ = true;
    if (params_.reset || bins_.size() != (size_t{1} << params_.bins_log2)) {
      bins_.assign(size_t{1} << params_.bins_log2, 0);
      items_processed_ = 0;
      chunks_ = 0;
    }
    return Words(HistogramParams::kEncodedSize);
  }

  if (streams_.roce_data_in.Empty()) {
    return 0;
  }
  if (streams_.roce_meta_out.Full() || streams_.roce_data_out.Full()) {
    return 0;
  }

  // The chunk is a zero-copy sub-span of the received wire frame; bin the
  // items straight out of it.
  NetChunk chunk = streams_.roce_data_in.Pop();
  const uint64_t mask = bins_.size() - 1;
  const ByteSpan items_bytes = chunk.data.span();
  const size_t items = items_bytes.size() / 8;
  for (size_t i = 0; i < items; ++i) {
    const uint64_t value = LoadLe64(items_bytes.data() + i * 8);
    ++bins_[(value >> params_.shift) & mask];
  }
  items_processed_ += items;
  ++chunks_;

  if (chunk.last && respond_configured_) {
    ByteBuffer response(bins_.size() * 8 + kStatusWordSize);
    for (size_t i = 0; i < bins_.size(); ++i) {
      StoreLe64(response.data() + i * 8, bins_[i]);
    }
    StoreLe64(response.data() + bins_.size() * 8,
              MakeStatusWord(KernelStatusCode::kOk, chunks_ & 0xFFFFFF,
                             static_cast<uint32_t>(items_processed_)));
    RoceMeta meta;
    meta.qpn = qpn_;
    meta.addr = params_.target_addr;
    meta.length = static_cast<uint32_t>(response.size());
    NetChunk out;
    out.data = FrameBuf::Adopt(std::move(response));
    out.last = true;
    streams_.roce_data_out.Push(std::move(out));
    streams_.roce_meta_out.Push(meta);
  }
  return Words(chunk.data.size());
}

}  // namespace strom
