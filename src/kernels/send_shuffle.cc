#include "src/kernels/send_shuffle.h"

#include <bit>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace strom {

ByteBuffer SendShuffleParams::Encode() const {
  ByteBuffer out(21 + targets.size() * 12, 0);
  StoreLe64(out.data(), source_addr);
  StoreLe32(out.data() + 8, length);
  StoreLe64(out.data() + 12, status_addr);
  out[20] = static_cast<uint8_t>(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    StoreLe32(out.data() + 21 + i * 12, targets[i].qpn);
    StoreLe64(out.data() + 21 + i * 12 + 4, targets[i].remote_addr);
  }
  return out;
}

std::optional<SendShuffleParams> SendShuffleParams::Decode(ByteSpan data) {
  if (data.size() < 21) {
    return std::nullopt;
  }
  SendShuffleParams p;
  p.source_addr = LoadLe64(data.data());
  p.length = LoadLe32(data.data() + 8);
  p.status_addr = LoadLe64(data.data() + 12);
  const uint8_t count = data[20];
  if (count == 0 || count > kSendShuffleMaxTargets || !std::has_single_bit(count) ||
      p.length % 8 != 0 || data.size() < 21 + count * size_t{12}) {
    return std::nullopt;
  }
  for (uint8_t i = 0; i < count; ++i) {
    SendShuffleTarget t;
    t.qpn = LoadLe32(data.data() + 21 + i * 12);
    t.remote_addr = LoadLe64(data.data() + 21 + i * 12 + 4);
    p.targets.push_back(t);
  }
  return p;
}

SendShuffleKernel::SendShuffleKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode) {
  fsm_ = std::make_unique<LambdaStage>(sim, config.clock_ps, "send_shuffle_fsm",
                                       [this] { return Fire(); });
  fsm_->WakeOnPush(streams_.qpn_in);
  fsm_->WakeOnPush(streams_.dma_data_in);
  fsm_->WakeOnPop(streams_.dma_cmd_out);
  fsm_->WakeOnPop(streams_.roce_meta_out);
  fsm_->WakeOnPop(streams_.roce_data_out);
}

bool SendShuffleKernel::EmitPartition(uint32_t p, bool allow_partial) {
  ByteBuffer& buf = buffers_[p];
  if (buf.empty() || (!allow_partial && buf.size() < kSendShuffleBufferBytes)) {
    return false;
  }
  RoceMeta meta;
  meta.qpn = params_.targets[p].qpn;
  meta.addr = params_.targets[p].remote_addr + cursors_[p];
  meta.length = static_cast<uint32_t>(buf.size());
  NetChunk chunk;
  chunk.data = FrameBuf::Copy(buf);
  chunk.last = true;
  streams_.roce_data_out.Push(std::move(chunk));
  streams_.roce_meta_out.Push(meta);
  cursors_[p] += buf.size();
  buf.clear();
  ++writes_emitted_;
  return true;
}

void SendShuffleKernel::Finish() {
  for (uint32_t p = 0; p < buffers_.size(); ++p) {
    EmitPartition(p, /*allow_partial=*/true);
  }
  // Completion word goes to local host memory over the DMA interface.
  uint8_t status[kStatusWordSize];
  StoreLe64(status, MakeStatusWord(KernelStatusCode::kOk,
                                   static_cast<uint32_t>(writes_emitted_ & 0xFFFFFF),
                                   static_cast<uint32_t>(tuples_sent_)));
  streams_.dma_cmd_out.Push(MemCmd{params_.status_addr, kStatusWordSize, /*is_write=*/true});
  NetChunk chunk;
  chunk.data = FrameBuf::Copy(ByteSpan(status, kStatusWordSize));
  chunk.last = true;
  streams_.dma_data_out.Push(std::move(chunk));
  state_ = State::kIdle;
}

uint64_t SendShuffleKernel::Fire() {
  switch (state_) {
    case State::kIdle: {
      if (streams_.qpn_in.Empty() || streams_.param_in.Empty() ||
          streams_.dma_cmd_out.Full()) {
        return 0;
      }
      streams_.qpn_in.Pop();
      ByteBuffer raw = streams_.param_in.Pop();
      std::optional<SendShuffleParams> params = SendShuffleParams::Decode(raw);
      if (!params.has_value()) {
        STROM_LOG(kWarning) << "send_shuffle: malformed parameters";
        return 1;
      }
      params_ = *params;
      partition_bits_ =
          static_cast<uint32_t>(std::countr_zero(params_.targets.size()));
      buffers_.assign(params_.targets.size(), ByteBuffer());
      cursors_.assign(params_.targets.size(), 0);
      bytes_requested_ = 0;
      bytes_processed_ = 0;
      tuples_sent_ = 0;
      writes_emitted_ = 0;
      if (params_.length == 0) {
        Finish();
        return 1;
      }
      // Prime the streaming read.
      const uint32_t first = std::min(kReadChunk, params_.length);
      streams_.dma_cmd_out.Push(MemCmd{params_.source_addr, first, false});
      bytes_requested_ = first;
      state_ = State::kStreaming;
      return Words(raw.size());
    }

    case State::kStreaming: {
      if (streams_.dma_data_in.Empty() || streams_.dma_cmd_out.Full() ||
          streams_.roce_meta_out.Full() || streams_.roce_data_out.Full() ||
          streams_.dma_data_out.Full()) {
        return 0;
      }
      // Keep the next fetch in flight while this chunk is processed.
      if (bytes_requested_ < params_.length) {
        const uint32_t next = std::min(kReadChunk, params_.length - bytes_requested_);
        streams_.dma_cmd_out.Push(
            MemCmd{params_.source_addr + bytes_requested_, next, false});
        bytes_requested_ += next;
      }

      NetChunk chunk = streams_.dma_data_in.Pop();
      if (chunk.error) {
        // Failed read: account for the bytes that should have arrived so the
        // stream still terminates; the affected tuples are skipped.
        bytes_processed_ += std::min(kReadChunk, params_.length - bytes_processed_);
        if (bytes_processed_ >= params_.length) {
          Finish();
        }
        return 1;
      }
      const ByteSpan tuple_bytes = chunk.data.span();
      const size_t tuples = tuple_bytes.size() / 8;
      for (size_t i = 0; i < tuples; ++i) {
        const uint8_t* tuple = tuple_bytes.data() + i * 8;
        const uint64_t value = LoadLe64(tuple);
        const uint32_t p = RadixPartition(value, partition_bits_);
        ByteBuffer& buf = buffers_[p];
        buf.insert(buf.end(), tuple, tuple + 8);
        if (buf.size() >= kSendShuffleBufferBytes) {
          EmitPartition(p, /*allow_partial=*/false);
        }
      }
      tuples_sent_ += tuples;
      bytes_processed_ += static_cast<uint32_t>(chunk.data.size());
      if (bytes_processed_ >= params_.length) {
        Finish();
      }
      return Words(chunk.data.size());
    }
  }
  return 0;
}

}  // namespace strom
