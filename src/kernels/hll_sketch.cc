#include "src/kernels/hll_sketch.h"

#include <bit>
#include <cmath>

#include "src/common/logging.h"

namespace strom {

HllSketch::HllSketch(int precision) : precision_(precision) {
  STROM_CHECK_GE(precision, 4);
  STROM_CHECK_LE(precision, 18);
  registers_.assign(size_t{1} << precision, 0);
}

void HllSketch::AddHash(uint64_t hash) {
  const uint64_t index = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank: position of the leftmost 1-bit in the remaining (64 - p) bits.
  const int zeros = rest == 0 ? 64 - precision_ : std::countl_zero(rest);
  const uint8_t rank = static_cast<uint8_t>(std::min(zeros, 64 - precision_) + 1);
  if (rank > registers_[index]) {
    registers_[index] = rank;
  }
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }

  double sum = 0;
  size_t zero_registers = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) {
      ++zero_registers;
    }
  }
  double estimate = alpha * m * m / sum;

  // Small-range correction: linear counting while registers remain empty.
  if (estimate <= 2.5 * m && zero_registers > 0) {
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  }
  return estimate;
}

void HllSketch::Reset() { registers_.assign(registers_.size(), 0); }

void HllSketch::Merge(const HllSketch& other) {
  STROM_CHECK_EQ(precision_, other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace strom
