// Consistency kernel (paper §6.3): reads a data object from the remote
// host's memory, verifies its trailing CRC64 checksum on the NIC, re-reads
// on mismatch (the object was being modified concurrently), and only then
// ships the consistent object to the requester — saving the extra network
// round trip that Pilaf-style software verification needs.
//
// Object layout in host memory: [payload (length-8 bytes)][CRC64 (8 bytes)].
#ifndef SRC_KERNELS_CONSISTENCY_H_
#define SRC_KERNELS_CONSISTENCY_H_

#include <memory>
#include <optional>
#include <string>

#include "src/common/crc.h"
#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kConsistencyRpcOpcode = 0x20;

struct ConsistencyParams {
  VirtAddr target_addr = 0;   // response buffer on the requester
  VirtAddr remote_addr = 0;   // object address (payload + trailing CRC64)
  uint32_t length = 0;        // total object size including the 8-byte CRC
  uint32_t max_attempts = 16; // re-read bound

  static constexpr size_t kEncodedSize = 24;
  ByteBuffer Encode() const;
  static std::optional<ConsistencyParams> Decode(ByteSpan data);
};

// Response at target_addr: [object (length bytes)][status word]. On success
// status code kOk; after exhausting retries, kChecksumFailed with the last
// (inconsistent) object still delivered for diagnosis. Iterations = reads.
class ConsistencyKernel : public StromKernel {
 public:
  ConsistencyKernel(Simulator& sim, KernelConfig config,
                    uint32_t rpc_opcode = kConsistencyRpcOpcode);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "consistency"; }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t checksum_failures() const { return checksum_failures_; }

  // Computes the CRC64 an object's trailer must carry (helper shared with
  // hosts writing objects).
  static uint64_t ObjectCrc(ByteSpan payload) { return Crc64::Compute(payload); }

 private:
  enum class State { kIdle, kWaitObject };

  uint64_t Fire();
  void Respond(KernelStatusCode code, const FrameBuf& object);

  uint32_t rpc_opcode_;
  std::unique_ptr<LambdaStage> fsm_;

  State state_ = State::kIdle;
  Qpn qpn_ = 0;
  ConsistencyParams params_;
  uint32_t attempts_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t checksum_failures_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_CONSISTENCY_H_
