// GET kernel: a faithful port of paper Listing 2 — the key-value store GET
// offload built from four HLS DATAFLOW functions connected by FIFOs:
//
//   fetch_ht_entry  -> htCmdFifo, metaFifo
//   parse_ht_entry  -> valueCmdFifo, roceMetaOut
//   merge_read_cmds -> readSrcFifo, dmaCmdOut
//   split_read_data -> htEntryFifo, roceDataOut
//
// Like the listing, it assumes exactly one matching key in the 3-bucket hash
// table entry (no miss handling; the traversal kernel covers chaining). Each
// stage is pipelined with II=1, so independent GETs overlap in the pipeline.
//
// Hash table entry layout (64 B): three buckets at offsets 0/20/40, each
// {key: 8 B, value_ptr: 8 B, value_len: 4 B}; last 4 bytes unused.
#ifndef SRC_KERNELS_GET_H_
#define SRC_KERNELS_GET_H_

#include <memory>
#include <optional>
#include <string>

#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kGetRpcOpcode = 0x50;

inline constexpr size_t kGetHtEntrySize = 64;
inline constexpr size_t kGetBuckets = 3;
inline constexpr size_t kGetBucketStride = 20;

struct GetParams {
  VirtAddr target_addr = 0;    // response buffer on the requester
  VirtAddr ht_entry_addr = 0;  // hash table entry to fetch
  uint64_t key = 0;

  static constexpr size_t kEncodedSize = 24;
  ByteBuffer Encode() const;
  static std::optional<GetParams> Decode(ByteSpan data);
};

// Writes a 64 B hash-table entry with the given buckets into `out`.
struct GetBucket {
  uint64_t key = 0;
  VirtAddr value_ptr = 0;
  uint32_t value_len = 0;
};
void EncodeHtEntry(const GetBucket buckets[kGetBuckets], uint8_t out[kGetHtEntrySize]);

// Response at target_addr: [value][status word]; poll target + value_len.
class GetKernel : public StromKernel {
 public:
  GetKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode = kGetRpcOpcode);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "get"; }

  uint64_t gets_served() const { return gets_served_; }

 private:
  struct InternalMeta {
    Qpn qpn = 0;
    uint64_t lookup_key = 0;
    VirtAddr target_addr = 0;
  };
  enum class ReadSource { kHtEntry, kValue };

  uint64_t FetchHtEntry();
  uint64_t ParseHtEntry();
  uint64_t MergeReadCmds();
  uint64_t SplitReadData();

  uint32_t rpc_opcode_;

  // Internal FIFOs, named as in Listing 2.
  Fifo<ReadSource> read_src_fifo_{64, "readSrcFifo"};
  Fifo<MemCmd> ht_cmd_fifo_{64, "htCmdFifo"};
  Fifo<MemCmd> value_cmd_fifo_{64, "valueCmdFifo"};
  Fifo<InternalMeta> meta_fifo_{64, "metaFifo"};
  Fifo<NetChunk> ht_entry_fifo_{64, "htEntryFifo"};
  Fifo<uint64_t> status_fifo_{64, "statusFifo"};

  std::unique_ptr<LambdaStage> fetch_stage_;
  std::unique_ptr<LambdaStage> parse_stage_;
  std::unique_ptr<LambdaStage> merge_stage_;
  std::unique_ptr<LambdaStage> split_stage_;

  uint64_t gets_served_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_GET_H_
