#include "src/kernels/consistency.h"

#include "src/common/logging.h"

namespace strom {

ByteBuffer ConsistencyParams::Encode() const {
  ByteBuffer out(kEncodedSize, 0);
  StoreLe64(out.data(), target_addr);
  StoreLe64(out.data() + 8, remote_addr);
  StoreLe32(out.data() + 16, length);
  StoreLe32(out.data() + 20, max_attempts);
  return out;
}

std::optional<ConsistencyParams> ConsistencyParams::Decode(ByteSpan data) {
  if (data.size() < kEncodedSize) {
    return std::nullopt;
  }
  ConsistencyParams p;
  p.target_addr = LoadLe64(data.data());
  p.remote_addr = LoadLe64(data.data() + 8);
  p.length = LoadLe32(data.data() + 16);
  p.max_attempts = LoadLe32(data.data() + 20);
  if (p.length < 8 || p.max_attempts == 0) {
    return std::nullopt;
  }
  return p;
}

ConsistencyKernel::ConsistencyKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode) {
  fsm_ = std::make_unique<LambdaStage>(sim, config.clock_ps, "consistency_fsm",
                                       [this] { return Fire(); });
  fsm_->WakeOnPush(streams_.qpn_in);
  fsm_->WakeOnPush(streams_.dma_data_in);
  fsm_->WakeOnPop(streams_.dma_cmd_out);
  fsm_->WakeOnPop(streams_.roce_meta_out);
  fsm_->WakeOnPop(streams_.roce_data_out);
}

void ConsistencyKernel::Respond(KernelStatusCode code, const FrameBuf& object) {
  uint8_t status[kStatusWordSize];
  StoreLe64(status, MakeStatusWord(code, attempts_, params_.length));

  RoceMeta meta;
  meta.qpn = qpn_;
  meta.addr = params_.target_addr;
  meta.length = params_.length + kStatusWordSize;

  NetChunk object_chunk;
  object_chunk.data = object;
  object_chunk.last = false;
  streams_.roce_data_out.Push(std::move(object_chunk));

  NetChunk status_chunk;
  status_chunk.data = FrameBuf::Copy(ByteSpan(status, kStatusWordSize));
  status_chunk.last = true;
  streams_.roce_data_out.Push(std::move(status_chunk));
  streams_.roce_meta_out.Push(meta);

  ++requests_served_;
  state_ = State::kIdle;
}

uint64_t ConsistencyKernel::Fire() {
  switch (state_) {
    case State::kIdle: {
      if (streams_.qpn_in.Empty() || streams_.param_in.Empty() ||
          streams_.dma_cmd_out.Full()) {
        return 0;
      }
      qpn_ = streams_.qpn_in.Pop();
      ByteBuffer raw = streams_.param_in.Pop();
      std::optional<ConsistencyParams> params = ConsistencyParams::Decode(raw);
      if (!params.has_value()) {
        STROM_LOG(kWarning) << "consistency: malformed parameters";
        return 1;
      }
      params_ = *params;
      attempts_ = 0;
      streams_.dma_cmd_out.Push(MemCmd{params_.remote_addr, params_.length, false});
      state_ = State::kWaitObject;
      return Words(ConsistencyParams::kEncodedSize);
    }

    case State::kWaitObject: {
      if (streams_.dma_data_in.Empty() || streams_.dma_cmd_out.Full() ||
          streams_.roce_meta_out.Full() || streams_.roce_data_out.Full()) {
        return 0;
      }
      NetChunk object = streams_.dma_data_in.Pop();
      ++attempts_;
      if (object.error || object.data.size() != params_.length) {
        // Failed or short read: respond with a zero-filled object so the
        // response still carries exactly meta.length bytes (a short chunk
        // would wedge the engine's response collector).
        ByteBuffer zeros(params_.length, 0);
        Respond(KernelStatusCode::kError, FrameBuf::Adopt(std::move(zeros)));
        return 1;
      }

      // Word-serial CRC64 over the payload; the stored checksum occupies the
      // last 8 bytes (Pilaf layout).
      const size_t payload_len = params_.length - 8;
      const ByteSpan bytes = object.data.span();
      const uint64_t computed = Crc64::Compute(bytes.subspan(0, payload_len));
      const uint64_t stored = LoadLe64(bytes.data() + payload_len);

      if (computed == stored) {
        Respond(KernelStatusCode::kOk, object.data);
        return Words(params_.length);
      }

      ++checksum_failures_;
      if (attempts_ >= params_.max_attempts) {
        Respond(KernelStatusCode::kChecksumFailed, object.data);
        return Words(params_.length);
      }
      // Inconsistent: re-read over PCIe (no network round trip).
      streams_.dma_cmd_out.Push(MemCmd{params_.remote_addr, params_.length, false});
      return Words(params_.length);
    }
  }
  return 0;
}

}  // namespace strom
