#include "src/kernels/traversal.h"

#include "src/common/logging.h"

namespace strom {

void TraversalPhase::EncodeTo(uint8_t* out) const {
  out[0] = key_mask;
  out[1] = static_cast<uint8_t>(predicate);
  out[2] = value_ptr_position;
  out[3] = is_relative_position ? 1 : 0;
  out[4] = next_element_ptr_position;
  out[5] = next_element_ptr_valid ? 1 : 0;
}

TraversalPhase TraversalPhase::DecodeFrom(const uint8_t* in) {
  TraversalPhase p;
  p.key_mask = in[0];
  p.predicate = static_cast<TraversalPredicate>(in[1]);
  p.value_ptr_position = in[2];
  p.is_relative_position = in[3] != 0;
  p.next_element_ptr_position = in[4];
  p.next_element_ptr_valid = in[5] != 0;
  return p;
}

ByteBuffer TraversalParams::Encode() const {
  ByteBuffer out(kEncodedSize, 0);
  StoreLe64(out.data(), target_addr);
  StoreLe64(out.data() + 8, remote_address);
  StoreLe32(out.data() + 16, value_size);
  StoreLe64(out.data() + 20, key);
  StoreLe32(out.data() + 28, max_hops);
  out[32] = descend_levels;
  descent.EncodeTo(out.data() + 33);
  search.EncodeTo(out.data() + 33 + TraversalPhase::kEncodedSize);
  return out;
}

std::optional<TraversalParams> TraversalParams::Decode(ByteSpan data) {
  if (data.size() < kEncodedSize) {
    return std::nullopt;
  }
  TraversalParams p;
  p.target_addr = LoadLe64(data.data());
  p.remote_address = LoadLe64(data.data() + 8);
  p.value_size = LoadLe32(data.data() + 16);
  p.key = LoadLe64(data.data() + 20);
  p.max_hops = LoadLe32(data.data() + 28);
  p.descend_levels = data[32];
  p.descent = TraversalPhase::DecodeFrom(data.data() + 33);
  p.search = TraversalPhase::DecodeFrom(data.data() + 33 + TraversalPhase::kEncodedSize);
  for (const TraversalPhase* phase : {&p.descent, &p.search}) {
    if (phase->value_ptr_position >= kTraversalSlots ||
        phase->next_element_ptr_position >= kTraversalSlots) {
      return std::nullopt;
    }
  }
  return p;
}

TraversalKernel::TraversalKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode) {
  fsm_ = std::make_unique<LambdaStage>(sim, config.clock_ps, "traversal_fsm",
                                       [this] { return Fire(); });
  fsm_->WakeOnPush(streams_.qpn_in);
  fsm_->WakeOnPush(streams_.dma_data_in);
  fsm_->WakeOnPop(streams_.dma_cmd_out);
  fsm_->WakeOnPop(streams_.roce_meta_out);
  fsm_->WakeOnPop(streams_.roce_data_out);
}

bool TraversalKernel::EvaluatePredicate(TraversalPredicate predicate,
                                        uint64_t element_key) const {
  switch (predicate) {
    case TraversalPredicate::kEqual:
      return element_key == params_.key;
    case TraversalPredicate::kLessThan:
      return element_key < params_.key;
    case TraversalPredicate::kGreaterThan:
      return element_key > params_.key;
    case TraversalPredicate::kNotEqual:
      return element_key != params_.key;
  }
  return false;
}

void TraversalKernel::Respond(KernelStatusCode code, const FrameBuf* value) {
  uint8_t status[kStatusWordSize];
  StoreLe64(status, MakeStatusWord(code, hops_, value != nullptr ? params_.value_size : 0));

  RoceMeta meta;
  meta.qpn = qpn_;
  if (value != nullptr) {
    // [value][status] at target_addr.
    meta.addr = params_.target_addr;
    meta.length = params_.value_size + kStatusWordSize;
    NetChunk value_chunk;
    value_chunk.data = *value;
    value_chunk.last = false;
    streams_.roce_data_out.Push(std::move(value_chunk));
  } else {
    // Status word only, at the poll location (target + value_size).
    meta.addr = params_.target_addr + params_.value_size;
    meta.length = kStatusWordSize;
  }
  NetChunk status_chunk;
  status_chunk.data = FrameBuf::Copy(ByteSpan(status, kStatusWordSize));
  status_chunk.last = true;
  streams_.roce_data_out.Push(std::move(status_chunk));
  streams_.roce_meta_out.Push(meta);

  ++requests_served_;
  state_ = State::kIdle;
}

uint64_t TraversalKernel::Fire() {
  switch (state_) {
    case State::kIdle: {
      if (streams_.qpn_in.Empty() || streams_.param_in.Empty() ||
          streams_.dma_cmd_out.Full()) {
        return 0;
      }
      qpn_ = streams_.qpn_in.Pop();
      ByteBuffer raw = streams_.param_in.Pop();
      std::optional<TraversalParams> params = TraversalParams::Decode(raw);
      if (!params.has_value()) {
        STROM_LOG(kWarning) << "traversal: malformed parameters (" << raw.size() << " bytes)";
        return 1;
      }
      params_ = *params;
      levels_left_ = params_.descend_levels;
      hops_ = 0;
      streams_.dma_cmd_out.Push(MemCmd{params_.remote_address, kTraversalElementSize, false});
      ++elements_fetched_;
      state_ = State::kWaitElement;
      return Words(TraversalParams::kEncodedSize);
    }

    case State::kWaitElement: {
      if (streams_.dma_data_in.Empty() || streams_.dma_cmd_out.Full() ||
          streams_.roce_meta_out.Full()) {
        return 0;
      }
      NetChunk element = streams_.dma_data_in.Pop();
      ++hops_;
      if (element.error || element.data.size() < kTraversalElementSize) {
        // The underlying READ failed (or returned short data): the traversal
        // must complete with an error status, never stall the invoker.
        Respond(KernelStatusCode::kError, nullptr);
        return 1;
      }
      const ByteSpan slots = element.data.span();
      const bool descending = levels_left_ > 0;
      const TraversalPhase& phase = descending ? params_.descent : params_.search;

      // Compare every masked slot concurrently (the hardware unrolls this).
      int matched_slot = -1;
      for (size_t i = 0; i < kTraversalSlots; ++i) {
        if ((phase.key_mask & (1u << i)) == 0) {
          continue;
        }
        const uint64_t slot_key = LoadLe64(slots.data() + i * 8);
        if (slot_key != 0 && EvaluatePredicate(phase.predicate, slot_key)) {
          matched_slot = static_cast<int>(i);
          break;
        }
      }

      VirtAddr follow = 0;
      if (matched_slot >= 0) {
        size_t value_slot = phase.value_ptr_position;
        if (phase.is_relative_position) {
          value_slot = (static_cast<size_t>(matched_slot) + value_slot) % kTraversalSlots;
        }
        follow = LoadLe64(slots.data() + value_slot * 8);
        if (!descending) {
          // Search phase: the match points at the final value.
          if (follow == 0 || params_.value_size == 0) {
            Respond(KernelStatusCode::kOk, nullptr);
            return Words(kTraversalElementSize);
          }
          streams_.dma_cmd_out.Push(MemCmd{follow, params_.value_size, false});
          state_ = State::kWaitValue;
          return Words(kTraversalElementSize);
        }
      } else if (phase.next_element_ptr_valid) {
        follow = LoadLe64(slots.data() + phase.next_element_ptr_position * 8);
      }

      if (follow != 0 && hops_ < params_.max_hops) {
        // Descent-phase pointers (matched child or rightmost fallback) go
        // one level down; search-phase next pointers chain within the level.
        if (descending) {
          --levels_left_;
        }
        streams_.dma_cmd_out.Push(MemCmd{follow, kTraversalElementSize, false});
        ++elements_fetched_;
        return Words(kTraversalElementSize);  // stay in kWaitElement
      }
      Respond(KernelStatusCode::kNotFound, nullptr);
      return Words(kTraversalElementSize);
    }

    case State::kWaitValue: {
      if (streams_.dma_data_in.Empty() || streams_.roce_meta_out.Full() ||
          streams_.roce_data_out.Full()) {
        return 0;
      }
      NetChunk value = streams_.dma_data_in.Pop();
      if (value.error || value.data.size() < params_.value_size) {
        // A short value would leave the engine collecting response bytes
        // that never come; fail the whole invocation instead.
        Respond(KernelStatusCode::kError, nullptr);
        return 1;
      }
      Respond(KernelStatusCode::kOk, &value.data);
      return Words(value.data.size());
    }
  }
  return 0;
}

}  // namespace strom
