// HyperLogLog sketch (Flajolet et al. 2007, with the bias corrections used
// by HLL-in-practice). Shared by the StRoM HLL kernel and the CPU baseline
// so both compute identical estimates.
#ifndef SRC_KERNELS_HLL_SKETCH_H_
#define SRC_KERNELS_HLL_SKETCH_H_

#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace strom {

class HllSketch {
 public:
  // precision p in [4, 18]: m = 2^p registers. p=14 matches the accuracy
  // class of production deployments (~0.8% standard error).
  explicit HllSketch(int precision = 14);

  int precision() const { return precision_; }
  size_t num_registers() const { return registers_.size(); }

  // Adds a raw 64-bit item (hashed internally with Mix64).
  void Add(uint64_t item) { AddHash(Mix64(item)); }
  // Adds a pre-computed 64-bit hash.
  void AddHash(uint64_t hash);

  // Cardinality estimate with small-range (linear counting) correction.
  double Estimate() const;

  void Reset();
  void Merge(const HllSketch& other);

  const std::vector<uint8_t>& registers() const { return registers_; }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace strom

#endif  // SRC_KERNELS_HLL_SKETCH_H_
