#include "src/kernels/get.h"

#include "src/common/logging.h"

namespace strom {

ByteBuffer GetParams::Encode() const {
  ByteBuffer out(kEncodedSize, 0);
  StoreLe64(out.data(), target_addr);
  StoreLe64(out.data() + 8, ht_entry_addr);
  StoreLe64(out.data() + 16, key);
  return out;
}

std::optional<GetParams> GetParams::Decode(ByteSpan data) {
  if (data.size() < kEncodedSize) {
    return std::nullopt;
  }
  GetParams p;
  p.target_addr = LoadLe64(data.data());
  p.ht_entry_addr = LoadLe64(data.data() + 8);
  p.key = LoadLe64(data.data() + 16);
  return p;
}

void EncodeHtEntry(const GetBucket buckets[kGetBuckets], uint8_t out[kGetHtEntrySize]) {
  std::memset(out, 0, kGetHtEntrySize);
  for (size_t i = 0; i < kGetBuckets; ++i) {
    uint8_t* b = out + i * kGetBucketStride;
    StoreLe64(b, buckets[i].key);
    StoreLe64(b + 8, buckets[i].value_ptr);
    StoreLe32(b + 16, buckets[i].value_len);
  }
}

GetKernel::GetKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode) {
  const SimTime clk = config.clock_ps;
  fetch_stage_ =
      std::make_unique<LambdaStage>(sim, clk, "fetch_ht_entry", [this] { return FetchHtEntry(); });
  parse_stage_ =
      std::make_unique<LambdaStage>(sim, clk, "parse_ht_entry", [this] { return ParseHtEntry(); });
  merge_stage_ =
      std::make_unique<LambdaStage>(sim, clk, "merge_read_cmds", [this] { return MergeReadCmds(); });
  split_stage_ =
      std::make_unique<LambdaStage>(sim, clk, "split_read_data", [this] { return SplitReadData(); });

  // Wire the DATAFLOW graph: each FIFO wakes its consumer on push and its
  // producer on pop (back-pressure).
  fetch_stage_->WakeOnPush(streams_.qpn_in);
  fetch_stage_->WakeOnPop(ht_cmd_fifo_);
  fetch_stage_->WakeOnPop(meta_fifo_);

  parse_stage_->WakeOnPush(meta_fifo_);
  parse_stage_->WakeOnPush(ht_entry_fifo_);
  parse_stage_->WakeOnPop(value_cmd_fifo_);
  parse_stage_->WakeOnPop(streams_.roce_meta_out);

  merge_stage_->WakeOnPush(ht_cmd_fifo_);
  merge_stage_->WakeOnPush(value_cmd_fifo_);
  merge_stage_->WakeOnPop(streams_.dma_cmd_out);
  merge_stage_->WakeOnPop(read_src_fifo_);

  split_stage_->WakeOnPush(read_src_fifo_);
  split_stage_->WakeOnPush(streams_.dma_data_in);
  split_stage_->WakeOnPop(streams_.roce_data_out);
  split_stage_->WakeOnPop(ht_entry_fifo_);
}

// Listing 3: consumes qpnIn+paramIn, issues the hash-table-entry read and
// forwards the metadata needed downstream.
uint64_t GetKernel::FetchHtEntry() {
  if (streams_.qpn_in.Empty() || streams_.param_in.Empty() || ht_cmd_fifo_.Full() ||
      meta_fifo_.Full()) {
    return 0;
  }
  const Qpn qpn = streams_.qpn_in.Pop();
  ByteBuffer raw = streams_.param_in.Pop();
  std::optional<GetParams> params = GetParams::Decode(raw);
  if (!params.has_value()) {
    STROM_LOG(kWarning) << "get: malformed parameters";
    return 1;
  }
  ht_cmd_fifo_.Push(MemCmd{params->ht_entry_addr, kGetHtEntrySize, false});
  meta_fifo_.Push(InternalMeta{qpn, params->key, params->target_addr});
  return 1;  // II=1
}

// Listing 4: matches the lookup key against the three buckets (unrolled in
// hardware), emits the value-read command and the RoCE response metadata.
uint64_t GetKernel::ParseHtEntry() {
  if (meta_fifo_.Empty() || ht_entry_fifo_.Empty() || value_cmd_fifo_.Full() ||
      streams_.roce_meta_out.Full() || streams_.roce_data_out.Full() ||
      status_fifo_.Full()) {
    return 0;
  }
  const InternalMeta meta = meta_fifo_.Pop();
  NetChunk entry = ht_entry_fifo_.Pop();
  if (entry.error || entry.data.size() < kGetHtEntrySize) {
    // Hash-table read failed: status-only error response so the client's
    // completion poll still fires.
    RoceMeta out;
    out.qpn = meta.qpn;
    out.addr = meta.target_addr;
    out.length = kStatusWordSize;
    uint8_t status[kStatusWordSize];
    StoreLe64(status, MakeStatusWord(KernelStatusCode::kError, 1, 0));
    NetChunk status_chunk;
    status_chunk.data = FrameBuf::Copy(ByteSpan(status, kStatusWordSize));
    status_chunk.last = true;
    streams_.roce_data_out.Push(std::move(status_chunk));
    streams_.roce_meta_out.Push(out);
    return 1;
  }

  bool match[kGetBuckets];
  GetBucket buckets[kGetBuckets];
  const ByteSpan entry_bytes = entry.data.span();
  for (size_t i = 0; i < kGetBuckets; ++i) {  // UNROLL
    const uint8_t* b = entry_bytes.data() + i * kGetBucketStride;
    buckets[i].key = LoadLe64(b);
    buckets[i].value_ptr = LoadLe64(b + 8);
    buckets[i].value_len = LoadLe32(b + 16);
    match[i] = buckets[i].key == meta.lookup_key;
  }
  // Check which key matches (Listing 4 defaults to bucket 0).
  const size_t match_idx = match[1] ? 1 : (match[2] ? 2 : 0);

  value_cmd_fifo_.Push(
      MemCmd{buckets[match_idx].value_ptr, buckets[match_idx].value_len, false});
  RoceMeta out;
  out.qpn = meta.qpn;
  out.addr = meta.target_addr;
  out.length = buckets[match_idx].value_len + kStatusWordSize;
  streams_.roce_meta_out.Push(out);
  status_fifo_.Push(
      MakeStatusWord(match[match_idx] ? KernelStatusCode::kOk : KernelStatusCode::kNotFound,
                     1, buckets[match_idx].value_len));
  return 1;
}

// Merges the two command streams toward the DMA engine, tagging each command
// so split_read_data can route the returning data.
uint64_t GetKernel::MergeReadCmds() {
  if (streams_.dma_cmd_out.Full() || read_src_fifo_.Full()) {
    return 0;
  }
  if (!ht_cmd_fifo_.Empty()) {
    streams_.dma_cmd_out.Push(ht_cmd_fifo_.Pop());
    read_src_fifo_.Push(ReadSource::kHtEntry);
    return 1;
  }
  if (!value_cmd_fifo_.Empty()) {
    streams_.dma_cmd_out.Push(value_cmd_fifo_.Pop());
    read_src_fifo_.Push(ReadSource::kValue);
    return 1;
  }
  return 0;
}

// Routes DMA read data to the requesting stage: hash-table entries loop back
// into parse_ht_entry, values stream out to the network.
uint64_t GetKernel::SplitReadData() {
  if (read_src_fifo_.Empty() || streams_.dma_data_in.Empty()) {
    return 0;
  }
  const ReadSource src = read_src_fifo_.Front();
  if (src == ReadSource::kHtEntry) {
    if (ht_entry_fifo_.Full()) {
      return 0;
    }
    read_src_fifo_.Pop();
    ht_entry_fifo_.Push(streams_.dma_data_in.Pop());
    return Words(kGetHtEntrySize);
  }
  if (streams_.roce_data_out.Full() || status_fifo_.Empty()) {
    return 0;
  }
  read_src_fifo_.Pop();
  NetChunk value = streams_.dma_data_in.Pop();
  uint64_t status_word = status_fifo_.Pop();
  if (value.error || value.data.size() < StatusWordExtra(status_word)) {
    // Value read failed: substitute a zero-filled value and flip the status
    // to kError so the response still carries exactly meta.length bytes.
    const uint32_t value_len = StatusWordExtra(status_word);
    ByteBuffer zeros(value_len, 0);
    value.data = FrameBuf::Adopt(std::move(zeros));
    status_word = MakeStatusWord(KernelStatusCode::kError, 1, value_len);
  }
  const uint64_t cycles = Words(value.data.size());
  value.last = false;
  streams_.roce_data_out.Push(std::move(value));

  uint8_t status[kStatusWordSize];
  StoreLe64(status, status_word);
  NetChunk status_chunk;
  status_chunk.data = FrameBuf::Copy(ByteSpan(status, kStatusWordSize));
  status_chunk.last = true;
  streams_.roce_data_out.Push(std::move(status_chunk));
  ++gets_served_;
  return cycles;
}

}  // namespace strom
