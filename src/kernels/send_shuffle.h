// Send-side shuffle kernel (paper §6.4, footnote 9): "The shuffling kernel
// can also be invoked on the local network card such that data is
// partitioned among different queue pairs and correspondingly different
// remote machines. However, data shuffling before transmission requires more
// buffering, up to MTU size, to achieve high bandwidth over the network."
//
// Invoked locally (or remotely) with a tuple region in host memory and up to
// eight {QP, remote address} targets; streams the region through the radix
// partitioner and emits one RDMA WRITE per full MTU-sized partition buffer.
// This is the paper's "send kernel" flavour, demonstrating multi-QP output
// through the fixed roceMetaOut interface.
#ifndef SRC_KERNELS_SEND_SHUFFLE_H_
#define SRC_KERNELS_SEND_SHUFFLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kSendShuffleRpcOpcode = 0x31;

inline constexpr uint32_t kSendShuffleMaxTargets = 8;  // 2^3 partitions
// MTU-size per-target buffering (footnote 9); one full RoCE payload.
inline constexpr uint32_t kSendShuffleBufferBytes = 1440;

struct SendShuffleTarget {
  Qpn qpn = 0;
  VirtAddr remote_addr = 0;  // base of this target's receive region
};

struct SendShuffleParams {
  VirtAddr source_addr = 0;   // tuple region in local host memory
  uint32_t length = 0;        // bytes (multiple of 8)
  VirtAddr status_addr = 0;   // local host address for the completion word
  std::vector<SendShuffleTarget> targets;  // 1..8, power-of-two count

  ByteBuffer Encode() const;
  static std::optional<SendShuffleParams> Decode(ByteSpan data);
};

// Completion: a status word is written to `status_addr` in *local* host
// memory via the kernel's DMA interface (iterations = RDMA writes emitted,
// extra = tuples partitioned, low 32 bits).
class SendShuffleKernel : public StromKernel {
 public:
  SendShuffleKernel(Simulator& sim, KernelConfig config,
                    uint32_t rpc_opcode = kSendShuffleRpcOpcode);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "send_shuffle"; }

  uint64_t tuples_sent() const { return tuples_sent_; }
  uint64_t writes_emitted() const { return writes_emitted_; }

 private:
  enum class State { kIdle, kStreaming };
  static constexpr uint32_t kReadChunk = 4096;  // DMA fetch granularity

  uint64_t Fire();
  bool EmitPartition(uint32_t p, bool allow_partial);
  void Finish();

  uint32_t rpc_opcode_;
  std::unique_ptr<LambdaStage> fsm_;

  State state_ = State::kIdle;
  SendShuffleParams params_;
  uint32_t partition_bits_ = 0;
  uint32_t bytes_requested_ = 0;
  uint32_t bytes_processed_ = 0;
  std::vector<ByteBuffer> buffers_;   // per-target MTU-sized staging
  std::vector<uint64_t> cursors_;     // bytes already shipped per target
  uint64_t tuples_sent_ = 0;
  uint64_t writes_emitted_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_SEND_SHUFFLE_H_
