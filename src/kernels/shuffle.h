// Shuffle kernel (paper §6.4): partitions an incoming RDMA RPC WRITE stream
// of 8-byte tuples on the fly, using a radix hash over the N least
// significant bits, and places each tuple in its partition's region of host
// memory. Per-partition 128 B on-chip buffers (16 tuples) batch the random
// DMA writes to keep up with line rate over PCIe.
#ifndef SRC_KERNELS_SHUFFLE_H_
#define SRC_KERNELS_SHUFFLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kShuffleRpcOpcode = 0x30;

inline constexpr uint32_t kShuffleMaxPartitionBits = 10;  // up to 1024 partitions
inline constexpr uint32_t kShuffleBufferTuples = 16;      // 128 B flush unit

// The RDMA RPC configuration message: the histogram is communicated as a
// uniform region layout (partition i lives at region_base + i*region_stride).
struct ShuffleParams {
  VirtAddr target_addr = 0;     // completion/status word on the requester
  uint32_t partition_bits = 8;  // 2^bits partitions (<= 10)
  VirtAddr region_base = 0;
  uint64_t region_stride = 0;   // per-partition capacity in bytes

  static constexpr size_t kEncodedSize = 28;
  ByteBuffer Encode() const;
  static std::optional<ShuffleParams> Decode(ByteSpan data);
};

// Usage: 1) postRpc(ShuffleParams) to configure; 2) postRpcWrite(tuples).
// When the stream's last chunk is processed and all buffers flushed, the
// kernel writes a status word (iterations = flush count, extra = tuple count
// low bits) to target_addr.
class ShuffleKernel : public StromKernel {
 public:
  ShuffleKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode = kShuffleRpcOpcode);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "shuffle"; }

  uint64_t tuples_partitioned() const { return tuples_partitioned_; }
  uint64_t buffer_flushes() const { return buffer_flushes_; }
  uint64_t overflow_drops() const { return overflow_drops_; }

 private:
  uint64_t Fire();
  bool Configure(ByteSpan raw);
  void FlushPartition(uint32_t p);
  void FinishStream();

  uint32_t rpc_opcode_;
  std::unique_ptr<LambdaStage> fsm_;

  bool configured_ = false;
  Qpn qpn_ = 0;
  ShuffleParams params_;
  std::vector<ByteBuffer> buffers_;   // on-chip partition buffers
  std::vector<uint64_t> cursors_;     // bytes already flushed per partition
  uint64_t stream_tuples_ = 0;
  uint64_t tuples_partitioned_ = 0;
  uint64_t buffer_flushes_ = 0;
  uint64_t overflow_drops_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_SHUFFLE_H_
