// Histogram kernel: equi-width histograms as a by-product of data movement
// (the use case of Istvan et al. [20], cited in the paper's intro as
// "gathering of statistics while data is transmitted"). Like HLL, it is a
// pure streaming kernel (II=1): usable as an RPC WRITE target or as a tap on
// the plain RDMA WRITE receive path.
#ifndef SRC_KERNELS_HISTOGRAM_H_
#define SRC_KERNELS_HISTOGRAM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kHistogramRpcOpcode = 0x60;

inline constexpr uint32_t kHistogramMaxBinsLog2 = 10;  // up to 1024 on-chip bins

struct HistogramParams {
  VirtAddr target_addr = 0;  // where [bins][status] are written back
  uint8_t bins_log2 = 8;     // 2^bins_log2 bins
  uint8_t shift = 0;         // bin = (value >> shift) & (bins - 1)
  bool reset = true;

  static constexpr size_t kEncodedSize = 11;
  ByteBuffer Encode() const;
  static std::optional<HistogramParams> Decode(ByteSpan data);
};

// Response at target_addr: [bin counts: 2^bins_log2 x 8 B][status word]
// (iterations = chunks processed & 0xFFFFFF, extra = items, low 32 bits).
class HistogramKernel : public StromKernel {
 public:
  HistogramKernel(Simulator& sim, KernelConfig config,
                  uint32_t rpc_opcode = kHistogramRpcOpcode);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "histogram"; }

  const std::vector<uint64_t>& bins() const { return bins_; }
  uint64_t items_processed() const { return items_processed_; }

 private:
  uint64_t Fire();

  uint32_t rpc_opcode_;
  std::unique_ptr<LambdaStage> fsm_;

  bool respond_configured_ = false;
  Qpn qpn_ = 0;
  HistogramParams params_;
  std::vector<uint64_t> bins_;
  uint64_t items_processed_ = 0;
  uint32_t chunks_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_HISTOGRAM_H_
