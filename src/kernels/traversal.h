// Traversal kernel (paper §6.2, Table 2): pointer chasing over remote data
// structures — linked lists, hash tables, trees, skip lists — replacing one
// network round trip per element with one PCIe round trip per element.
//
// Data-structure elements are 64 B, divided into eight 8-byte slots with
// 4-byte alignment; keys are fixed 8 B (paper's stated assumptions).
//
// Traversal runs in up to two phases, which is what makes B-trees ("more
// complex data structures, such as B-trees or graphs", §6.2) expressible:
//   * descent phase (`descend_levels` > 0): every followed pointer — the
//     value pointer of the first matching key slot, or the fallback next
//     pointer when nothing matches — leads to another element one level
//     down. Used to route through internal tree nodes (e.g. predicate
//     GREATER_THAN picks the child whose separator exceeds the probe).
//   * search phase: the classic Table 2 behaviour — a match reads the final
//     value, the next pointer chains within the level (lists, bucket
//     chains), absence of both terminates with not-found.
#ifndef SRC_KERNELS_TRAVERSAL_H_
#define SRC_KERNELS_TRAVERSAL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kTraversalRpcOpcode = 0x10;

inline constexpr size_t kTraversalElementSize = 64;
inline constexpr size_t kTraversalSlots = 8;  // 8 slots x 8 B

// Table 2: predicateOpCode.
enum class TraversalPredicate : uint8_t {
  kEqual = 0,
  kLessThan = 1,
  kGreaterThan = 2,
  kNotEqual = 3,
};

// Per-phase element interpretation (the Table 2 fields).
struct TraversalPhase {
  uint8_t key_mask = 0;  // bit i set => slot i holds a key
  TraversalPredicate predicate = TraversalPredicate::kEqual;
  uint8_t value_ptr_position = 0;      // slot of the value/child pointer
  bool is_relative_position = false;   // relative to the matching key slot?
  uint8_t next_element_ptr_position = 0;
  bool next_element_ptr_valid = false;

  static constexpr size_t kEncodedSize = 6;
  void EncodeTo(uint8_t* out) const;
  static TraversalPhase DecodeFrom(const uint8_t* in);
};

struct TraversalParams {
  VirtAddr target_addr = 0;       // response buffer on the requester
  VirtAddr remote_address = 0;    // address of the initial element
  uint32_t value_size = 0;        // size of the final value to be read
  uint64_t key = 0;               // the lookup key
  uint32_t max_hops = 1024;       // safety bound against cyclic structures
  uint8_t descend_levels = 0;     // internal levels before the search phase
  TraversalPhase descent;         // used while levels remain
  TraversalPhase search;          // final-level behaviour (Table 2)

  static constexpr size_t kEncodedSize = 33 + 2 * TraversalPhase::kEncodedSize;
  ByteBuffer Encode() const;
  static std::optional<TraversalParams> Decode(ByteSpan data);
};

// Response layout at target_addr: [value (value_size bytes)][status word].
// Poll target_addr + value_size; StatusWordIterations() is the hop count.
class TraversalKernel : public StromKernel {
 public:
  TraversalKernel(Simulator& sim, KernelConfig config,
                  uint32_t rpc_opcode = kTraversalRpcOpcode);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "traversal"; }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t elements_fetched() const { return elements_fetched_; }

 private:
  enum class State { kIdle, kWaitElement, kWaitValue };

  uint64_t Fire();
  bool EvaluatePredicate(TraversalPredicate predicate, uint64_t element_key) const;
  void Respond(KernelStatusCode code, const FrameBuf* value);

  uint32_t rpc_opcode_;
  std::unique_ptr<LambdaStage> fsm_;

  State state_ = State::kIdle;
  Qpn qpn_ = 0;
  TraversalParams params_;
  uint32_t levels_left_ = 0;
  uint32_t hops_ = 0;
  uint64_t requests_served_ = 0;
  uint64_t elements_fetched_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_TRAVERSAL_H_
