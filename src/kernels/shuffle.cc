#include "src/kernels/shuffle.h"

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace strom {

ByteBuffer ShuffleParams::Encode() const {
  ByteBuffer out(kEncodedSize, 0);
  StoreLe64(out.data(), target_addr);
  StoreLe32(out.data() + 8, partition_bits);
  StoreLe64(out.data() + 12, region_base);
  StoreLe64(out.data() + 20, region_stride);
  return out;
}

std::optional<ShuffleParams> ShuffleParams::Decode(ByteSpan data) {
  if (data.size() < kEncodedSize) {
    return std::nullopt;
  }
  ShuffleParams p;
  p.target_addr = LoadLe64(data.data());
  p.partition_bits = LoadLe32(data.data() + 8);
  p.region_base = LoadLe64(data.data() + 12);
  p.region_stride = LoadLe64(data.data() + 20);
  if (p.partition_bits > kShuffleMaxPartitionBits || p.region_stride % 8 != 0) {
    return std::nullopt;
  }
  return p;
}

ShuffleKernel::ShuffleKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode) {
  fsm_ = std::make_unique<LambdaStage>(sim, config.clock_ps, "shuffle_fsm",
                                       [this] { return Fire(); });
  fsm_->WakeOnPush(streams_.qpn_in);
  fsm_->WakeOnPush(streams_.roce_data_in);
  fsm_->WakeOnPop(streams_.dma_cmd_out);
  fsm_->WakeOnPop(streams_.dma_data_out);
  fsm_->WakeOnPop(streams_.roce_meta_out);
}

bool ShuffleKernel::Configure(ByteSpan raw) {
  std::optional<ShuffleParams> params = ShuffleParams::Decode(raw);
  if (!params.has_value()) {
    STROM_LOG(kWarning) << "shuffle: malformed configuration";
    return false;
  }
  params_ = *params;
  const size_t n = size_t{1} << params_.partition_bits;
  buffers_.assign(n, ByteBuffer());
  for (auto& b : buffers_) {
    b.reserve(kShuffleBufferTuples * 8);
  }
  cursors_.assign(n, 0);
  stream_tuples_ = 0;
  configured_ = true;
  return true;
}

void ShuffleKernel::FlushPartition(uint32_t p) {
  ByteBuffer& buf = buffers_[p];
  if (buf.empty()) {
    return;
  }
  const VirtAddr dest = params_.region_base + p * params_.region_stride + cursors_[p];
  if (cursors_[p] + buf.size() > params_.region_stride) {
    // Region overflow: the histogram under-provisioned this partition.
    overflow_drops_ += buf.size() / 8;
    buf.clear();
    return;
  }
  streams_.dma_cmd_out.Push(MemCmd{dest, static_cast<uint32_t>(buf.size()), true});
  NetChunk chunk;
  chunk.data = FrameBuf::Copy(buf);
  chunk.last = true;
  streams_.dma_data_out.Push(std::move(chunk));
  cursors_[p] += buf.size();
  ++buffer_flushes_;
  buf.clear();
}

void ShuffleKernel::FinishStream() {
  for (uint32_t p = 0; p < buffers_.size(); ++p) {
    FlushPartition(p);
  }
  uint8_t status[kStatusWordSize];
  StoreLe64(status, MakeStatusWord(KernelStatusCode::kOk,
                                   static_cast<uint32_t>(buffer_flushes_ & 0xFFFFFF),
                                   static_cast<uint32_t>(stream_tuples_)));
  RoceMeta meta;
  meta.qpn = qpn_;
  meta.addr = params_.target_addr;
  meta.length = kStatusWordSize;
  NetChunk chunk;
  chunk.data = FrameBuf::Copy(ByteSpan(status, kStatusWordSize));
  chunk.last = true;
  streams_.roce_data_out.Push(std::move(chunk));
  streams_.roce_meta_out.Push(meta);
}

uint64_t ShuffleKernel::Fire() {
  // Configuration RPC takes priority over stream data.
  if (!streams_.qpn_in.Empty() && !streams_.param_in.Empty()) {
    qpn_ = streams_.qpn_in.Pop();
    ByteBuffer raw = streams_.param_in.Pop();
    Configure(raw);
    return Words(ShuffleParams::kEncodedSize);
  }

  if (streams_.roce_data_in.Empty()) {
    return 0;
  }
  // Flushing up to all partitions plus the final status must have room.
  if (streams_.dma_cmd_out.Full() || streams_.dma_data_out.Full() ||
      streams_.roce_meta_out.Full()) {
    return 0;
  }
  if (!configured_) {
    NetChunk dropped = streams_.roce_data_in.Pop();
    STROM_LOG(kWarning) << "shuffle: stream data before configuration, dropping "
                        << dropped.data.size() << " bytes";
    return 1;
  }

  // Partition tuples straight out of the wire-frame sub-span: one load for
  // the radix decision, one 8-byte append into the partition buffer.
  NetChunk chunk = streams_.roce_data_in.Pop();
  const ByteSpan tuple_bytes = chunk.data.span();
  const size_t tuples = tuple_bytes.size() / 8;
  const uint32_t mask_bits = params_.partition_bits;
  for (size_t i = 0; i < tuples; ++i) {
    const uint8_t* tuple = tuple_bytes.data() + i * 8;
    const uint64_t value = LoadLe64(tuple);
    const uint32_t p = RadixPartition(value, mask_bits);
    ByteBuffer& buf = buffers_[p];
    buf.insert(buf.end(), tuple, tuple + 8);
    if (buf.size() >= kShuffleBufferTuples * 8) {
      FlushPartition(p);
    }
  }
  stream_tuples_ += tuples;
  tuples_partitioned_ += tuples;

  if (chunk.last) {
    FinishStream();
  }
  // One tuple per data-path word at 8 B width; 8 tuples per word at 64 B.
  return Words(chunk.data.size());
}

}  // namespace strom
