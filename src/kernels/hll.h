// HyperLogLog kernel (paper §7.2): cardinality estimation over data streams
// as a by-product of data reception. Two modes:
//   * RPC mode: postRpc(HllParams) configures/resets, postRpcWrite streams
//     tuples through the kernel; on the last chunk the estimate and a status
//     word are written back to the requester.
//   * Tap mode (Write+HLL, Fig 13b): attached to a QP's plain RDMA WRITE
//     receive path via StromEngine::AttachReceiveTap, the kernel sketches
//     every 8-byte word while data flows to memory, at line rate (II=1).
#ifndef SRC_KERNELS_HLL_H_
#define SRC_KERNELS_HLL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/kernels/hll_sketch.h"
#include "src/strom/kernel.h"

namespace strom {

inline constexpr uint32_t kHllRpcOpcode = 0x40;

struct HllParams {
  VirtAddr target_addr = 0;  // where estimate + status are written
  bool reset = true;         // clear registers before the next stream

  static constexpr size_t kEncodedSize = 9;
  ByteBuffer Encode() const;
  static std::optional<HllParams> Decode(ByteSpan data);
};

// Response at target_addr: [estimate (8 B, uint64)][status word (8 B)].
class HllKernel : public StromKernel {
 public:
  // `cycles_per_word` > 1 models a kernel that cannot sustain line rate
  // (used by the ablation bench; the paper requires II=1).
  HllKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode = kHllRpcOpcode,
            uint32_t cycles_per_word = 1);

  uint32_t rpc_opcode() const override { return rpc_opcode_; }
  std::string name() const override { return "hll"; }

  // Host-side state inspection (Controller status registers).
  const HllSketch& sketch() const { return sketch_; }
  double Estimate() const { return sketch_.Estimate(); }
  uint64_t items_processed() const { return items_processed_; }
  // Simulated time when the kernel finished its last input chunk — used to
  // verify the bump-in-the-wire adds no throughput overhead.
  SimTime last_item_done_at() const { return last_item_done_at_; }

 private:
  uint64_t Fire();

  uint32_t rpc_opcode_;
  uint32_t cycles_per_word_;
  std::unique_ptr<LambdaStage> fsm_;

  bool respond_configured_ = false;
  Qpn qpn_ = 0;
  HllParams params_;
  HllSketch sketch_;
  uint64_t items_processed_ = 0;
  SimTime last_item_done_at_ = 0;
};

}  // namespace strom

#endif  // SRC_KERNELS_HLL_H_
