#include "src/kernels/hll.h"

#include <cmath>

#include "src/common/logging.h"

namespace strom {

ByteBuffer HllParams::Encode() const {
  ByteBuffer out(kEncodedSize, 0);
  StoreLe64(out.data(), target_addr);
  out[8] = reset ? 1 : 0;
  return out;
}

std::optional<HllParams> HllParams::Decode(ByteSpan data) {
  if (data.size() < kEncodedSize) {
    return std::nullopt;
  }
  HllParams p;
  p.target_addr = LoadLe64(data.data());
  p.reset = data[8] != 0;
  return p;
}

HllKernel::HllKernel(Simulator& sim, KernelConfig config, uint32_t rpc_opcode,
                     uint32_t cycles_per_word)
    : StromKernel(sim, config), rpc_opcode_(rpc_opcode), cycles_per_word_(cycles_per_word) {
  fsm_ = std::make_unique<LambdaStage>(sim, config.clock_ps, "hll_fsm",
                                       [this] { return Fire(); });
  fsm_->WakeOnPush(streams_.qpn_in);
  fsm_->WakeOnPush(streams_.roce_data_in);
  fsm_->WakeOnPop(streams_.roce_meta_out);
}

uint64_t HllKernel::Fire() {
  if (!streams_.qpn_in.Empty() && !streams_.param_in.Empty()) {
    qpn_ = streams_.qpn_in.Pop();
    ByteBuffer raw = streams_.param_in.Pop();
    std::optional<HllParams> params = HllParams::Decode(raw);
    if (!params.has_value()) {
      STROM_LOG(kWarning) << "hll: malformed parameters";
      return 1;
    }
    params_ = *params;
    respond_configured_ = true;
    if (params_.reset) {
      sketch_.Reset();
      items_processed_ = 0;
    }
    return Words(HllParams::kEncodedSize);
  }

  if (streams_.roce_data_in.Empty()) {
    return 0;
  }
  if (streams_.roce_meta_out.Full() || streams_.roce_data_out.Full()) {
    return 0;
  }

  // Consume the wire-frame sub-span in place, hashing a batch of 8 keys in
  // flight before touching the registers — mirroring the hardware's unrolled
  // hash lanes and keeping the (random-access) register updates off the
  // load critical path. Results are identical to one-at-a-time updates:
  // AddHash calls land in the same order with the same hashes.
  NetChunk chunk = streams_.roce_data_in.Pop();
  const ByteSpan keys = chunk.data.span();
  const size_t items = keys.size() / 8;
  constexpr size_t kBatch = 8;
  uint64_t hashes[kBatch];
  size_t i = 0;
  for (; i + kBatch <= items; i += kBatch) {
    for (size_t j = 0; j < kBatch; ++j) {  // UNROLL: hash lanes
      hashes[j] = Mix64(LoadLe64(keys.data() + (i + j) * 8));
    }
    for (size_t j = 0; j < kBatch; ++j) {
      sketch_.AddHash(hashes[j]);
    }
  }
  for (; i < items; ++i) {
    sketch_.Add(LoadLe64(keys.data() + i * 8));
  }
  items_processed_ += items;

  const uint64_t cycles = Words(chunk.data.size()) * cycles_per_word_;
  last_item_done_at_ = sim_.now() + static_cast<SimTime>(cycles) * config_.clock_ps;

  if (chunk.last && respond_configured_) {
    const uint64_t estimate = static_cast<uint64_t>(std::llround(sketch_.Estimate()));
    ByteBuffer response(16, 0);
    StoreLe64(response.data(), estimate);
    StoreLe64(response.data() + 8,
              MakeStatusWord(KernelStatusCode::kOk,
                             static_cast<uint32_t>(items_processed_ & 0xFFFFFF)));
    RoceMeta meta;
    meta.qpn = qpn_;
    meta.addr = params_.target_addr;
    meta.length = 16;
    NetChunk out;
    out.data = FrameBuf::Adopt(std::move(response));
    out.last = true;
    streams_.roce_data_out.Push(std::move(out));
    streams_.roce_meta_out.Push(meta);
  }
  return cycles;
}

}  // namespace strom
