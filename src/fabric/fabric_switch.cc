#include "src/fabric/fabric_switch.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/paranoid.h"
#include "src/netsim/pfc.h"
#include "src/proto/packet.h"
#include "src/telemetry/audit.h"

namespace strom {

FabricSwitch::FabricSwitch(Simulator& sim, FabricSwitchConfig config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  // Locally-administered switch MAC; only used as the pause-frame source
  // (pause frames are consumed hop-by-hop, so collisions between switches
  // are harmless).
  mac_ = MacAddr{0x02, 0x00, 0x5C, 0x00, 0x00, 0x01};
}

int FabricSwitch::AddPortEntry(std::unique_ptr<PointToPointLink> owned,
                               PointToPointLink* link, int tx_side) {
  const int port = static_cast<int>(ports_.size());
  Port p;
  p.owned_link = std::move(owned);
  p.link = link;
  p.tx_side = tx_side;
  ports_.push_back(std::move(p));
  // Attach on the transmit side: a side-S handler receives frames sent from
  // side 1-S, i.e. traffic arriving from the endpoint/peer.
  link->Attach(tx_side, [this, port](FrameBuf frame, TraceContext trace) {
    OnFrame(port, std::move(frame), trace);
  });
  return port;
}

int FabricSwitch::AddPort() {
  LinkConfig lc;
  lc.rate_bps = config_.port_rate_bps;
  lc.ip_mtu = config_.ip_mtu;
  auto owned = std::make_unique<PointToPointLink>(sim_, lc);
  PointToPointLink* link = owned.get();
  return AddPortEntry(std::move(owned), link, /*tx_side=*/1);
}

std::pair<int, int> FabricSwitch::ConnectTo(FabricSwitch& peer) {
  LinkConfig lc;
  lc.rate_bps = config_.port_rate_bps;
  lc.ip_mtu = config_.ip_mtu;
  auto owned = std::make_unique<PointToPointLink>(sim_, lc);
  PointToPointLink* link = owned.get();
  const int my_port = AddPortEntry(std::move(owned), link, /*tx_side=*/1);
  const int peer_port = peer.AddPortEntry(nullptr, link, /*tx_side=*/0);
  return {my_port, peer_port};
}

void FabricSwitch::AddStaticRoute(const MacAddr& mac, int port) { mac_table_[mac] = port; }

void FabricSwitch::AttachCapture(PcapWriter* writer) {
  for (size_t port = 0; port < ports_.size(); ++port) {
    if (ports_[port].owned_link != nullptr) {
      ports_[port].owned_link->AttachCapture(
          writer, name_ + ".port" + std::to_string(port));
    }
  }
}

void FabricSwitch::AttachTelemetry(Telemetry* telemetry, const std::string& process) {
  for (size_t port = 0; port < ports_.size(); ++port) {
    const std::string prefix = process + ".port" + std::to_string(port) + ".";
    const FabricPortCounters& c = ports_[port].counters;
    telemetry->metrics.AddGauge(prefix + "frames_enqueued",
                                [&c] { return double(c.frames_enqueued); });
    telemetry->metrics.AddGauge(prefix + "ce_marked",
                                [&c] { return double(c.ce_marked); });
    telemetry->metrics.AddGauge(prefix + "tail_drops",
                                [&c] { return double(c.tail_drops); });
    telemetry->metrics.AddGauge(prefix + "pause_tx",
                                [&c] { return double(c.pause_tx); });
    telemetry->metrics.AddGauge(prefix + "resume_tx",
                                [&c] { return double(c.resume_tx); });
    telemetry->metrics.AddGauge(prefix + "queue_bytes_peak",
                                [&c] { return double(c.queue_bytes_peak); });
    telemetry->metrics.AddGauge(prefix + "crash_drops",
                                [&c] { return double(c.crash_drops); });
  }
  telemetry->metrics.AddGauge(process + ".crash_ingress_drops",
                              [this] { return double(crash_ingress_drops_); });
}

void FabricSwitch::AttachSampler(Telemetry* telemetry, const std::string& process) {
  for (size_t port = 0; port < ports_.size(); ++port) {
    const std::string prefix = process + ".port" + std::to_string(port) + ".";
    const Port& p = ports_[port];
    telemetry->sampler.AddProbe(prefix + "queue_bytes",
                                [&p](SimTime) { return double(p.queued_bytes); });
    telemetry->sampler.AddProbe(prefix + "ce_marked",
                                [&p](SimTime) { return double(p.counters.ce_marked); });
    telemetry->sampler.AddProbe(prefix + "tail_drops",
                                [&p](SimTime) { return double(p.counters.tail_drops); });
  }
}

void FabricSwitch::AttachFlowSampler(Telemetry* telemetry, const std::string& process) {
  for (size_t port = 0; port < ports_.size(); ++port) {
    const std::string prefix = process + ".port" + std::to_string(port) + ".";
    const Port& p = ports_[port];
    telemetry->sampler.AddProbe(prefix + "frames_enqueued", [&p](SimTime) {
      return double(p.counters.frames_enqueued);
    });
    telemetry->sampler.AddProbe(prefix + "frames_dequeued", [&p](SimTime) {
      return double(p.counters.frames_dequeued);
    });
    telemetry->sampler.AddProbe(prefix + "pause_tx",
                                [&p](SimTime) { return double(p.counters.pause_tx); });
    telemetry->sampler.AddProbe(prefix + "resume_tx",
                                [&p](SimTime) { return double(p.counters.resume_tx); });
  }
}

void FabricSwitch::AuditConservation(Auditor& auditor) const {
  for (size_t port = 0; port < ports_.size(); ++port) {
    const Port& p = ports_[port];
    auditor.NoteCheck();
    const uint64_t queued = p.queue.size();
    if (p.counters.frames_enqueued !=
        p.counters.frames_dequeued + queued + p.counters.crash_drops) {
      auditor.Violation(name_ + ".port" + std::to_string(port) +
                        " conservation: enqueued=" +
                        std::to_string(p.counters.frames_enqueued) +
                        " dequeued=" + std::to_string(p.counters.frames_dequeued) +
                        " queued=" + std::to_string(queued) +
                        " crash_drops=" + std::to_string(p.counters.crash_drops));
    }
  }
}

void FabricSwitch::OnFrame(int in_port, FrameBuf frame, TraceContext trace) {
  if (!alive_) {
    ++crash_ingress_drops_;
    return;
  }
  if (frame.size() < EthHeader::kSize) {
    return;
  }
  // 802.3x pause terminates at the ingress port: this switch does not honor
  // pause itself (lossless fabric hops are out of scope), and the reserved
  // multicast destination must never be forwarded or learned.
  if (IsFlowControlFrame(frame)) {
    return;
  }
  MacAddr dst;
  MacAddr src;
  // Fast path: reuse the TX encoder's memoized MACs (see EthernetSwitch).
  if (const RoceFrameMemo* memo = frame.GetMemo<RoceFrameMemo>();
      memo != nullptr && !ParanoidMode()) {
    dst = memo->dst_mac;
    src = memo->src_mac;
  } else {
    std::copy(frame.begin(), frame.begin() + 6, dst.begin());
    std::copy(frame.begin() + 6, frame.begin() + 12, src.begin());
    if (const RoceFrameMemo* memo = frame.GetMemo<RoceFrameMemo>()) {
      STROM_CHECK(memo->dst_mac == dst && memo->src_mac == src)
          << "paranoid: memo MACs diverge from wire Ethernet header";
    }
  }
  mac_table_[src] = in_port;  // learn

  auto it = mac_table_.find(dst);
  if (it != mac_table_.end()) {
    ++frames_forwarded_;
    const int out_port = it->second;
    sim_.Schedule(config_.forwarding_latency,
                  [this, out_port, in_port, f = std::move(frame), trace]() mutable {
      Enqueue(out_port, in_port, std::move(f), trace);
    });
    return;
  }
  ++frames_flooded_;
  for (size_t port = 0; port < ports_.size(); ++port) {
    if (static_cast<int>(port) == in_port) {
      continue;
    }
    const int out_port = static_cast<int>(port);
    // Flooded copies share the buffer by reference count; MarkEcnCe detaches
    // (EnsureUnique) before mutating, so a marked copy never aliases.
    sim_.Schedule(config_.forwarding_latency,
                  [this, out_port, in_port, f = frame, trace]() mutable {
      Enqueue(out_port, in_port, std::move(f), trace);
    });
  }
}

void FabricSwitch::Enqueue(int out_port, int in_port, FrameBuf frame, TraceContext trace) {
  // Frames inside the forwarding pipeline when the switch died land here
  // after the crash; they die with the switch. Counted outside the per-port
  // conservation equation because they never reached an egress FIFO.
  if (!alive_) {
    ++crash_ingress_drops_;
    return;
  }
  Port& p = ports_[out_port];
  const size_t bytes = frame.size();
  if (p.queued_bytes + bytes > config_.egress_queue_bytes) {
    ++p.counters.tail_drops;
    return;
  }
  // Mark-at-enqueue: the decision uses the depth the frame *finds*, the
  // standard RED/ECN arrival model. Only ECT frames actually change.
  if (p.queued_bytes >= config_.ecn_threshold_bytes && MarkEcnCe(frame)) {
    ++p.counters.ce_marked;
  }
  p.queued_bytes += bytes;
  p.counters.queue_bytes_peak = std::max<uint64_t>(p.counters.queue_bytes_peak, p.queued_bytes);
  ++p.counters.frames_enqueued;
  if (config_.pfc && in_port >= 0 && p.queued_bytes >= config_.pfc_xoff_bytes &&
      p.paused_ingress.insert(in_port).second) {
    ++p.counters.pause_tx;
    SendPause(in_port, config_.pfc_quanta);
  }
  p.queue.push_back(Pending{std::move(frame), trace, in_port});
  DequeueNext(out_port);
}

void FabricSwitch::DequeueNext(int out_port) {
  Port& p = ports_[out_port];
  if (p.tx_busy || p.queue.empty()) {
    return;
  }
  Pending pending = std::move(p.queue.front());
  p.queue.pop_front();
  p.queued_bytes -= pending.frame.size();
  ++p.counters.frames_dequeued;
  if (config_.pfc && !p.paused_ingress.empty() &&
      p.queued_bytes <= config_.pfc_xon_bytes) {
    for (int ingress : p.paused_ingress) {
      ++p.counters.resume_tx;
      SendPause(ingress, 0);  // xon
    }
    p.paused_ingress.clear();
  }
  const uint64_t wire_bytes = pending.frame.size() + kEthPhyOverhead;
  p.tx_busy = true;
  p.link->Send(p.tx_side, std::move(pending.frame), pending.trace);
  // Release the next frame when this one has serialized. The link's own
  // busy-until cursor sees at most one frame at a time from us, so queueing
  // lives entirely in the observable FIFO above. Epoch-stamped so a release
  // scheduled before a crash cannot unblock the port the restart already
  // reset (a stale clear would let two frames overlap on the wire).
  sim_.Schedule(TransferTime(wire_bytes, config_.port_rate_bps),
                [this, out_port, epoch = crash_epoch_] {
    if (epoch != crash_epoch_) {
      return;
    }
    ports_[out_port].tx_busy = false;
    DequeueNext(out_port);
  });
}

void FabricSwitch::Crash() {
  alive_ = false;
  ++crash_epoch_;
  for (Port& p : ports_) {
    p.counters.crash_drops += p.queue.size();
    p.queue.clear();  // releases the pooled frames — leak-free by design
    p.queued_bytes = 0;
    p.tx_busy = false;
    // Paused upstream ports stay paused until their quanta expire; the dead
    // switch cannot send the xon. Drop the bookkeeping so a post-restart
    // drain does not emit resumes for pauses it never sent.
    p.paused_ingress.clear();
  }
}

void FabricSwitch::Restart() {
  // Queues are empty and TX serializers idle (Crash() reset them); the MAC
  // table and static routes persist as configuration.
  alive_ = true;
}

void FabricSwitch::SendPause(int ingress_port, uint16_t quanta) {
  // Pause frames bypass the egress FIFO: flow control outranks data.
  Port& p = ports_[ingress_port];
  p.link->Send(p.tx_side, EncodePauseFrame(mac_, quanta), TraceContext{});
}

}  // namespace strom
