#include "src/fabric/fabric.h"

#include "src/common/logging.h"
#include "src/sim/lp_scheduler.h"
#include "src/telemetry/audit.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/flow_stats.h"

namespace strom {

namespace {

MacAddr MacForHost(int i) {
  return MacAddr{0x02, 0x00, 0x00, 0x00, static_cast<uint8_t>((i + 1) >> 8),
                 static_cast<uint8_t>((i + 1) & 0xFF)};
}

Ipv4Addr IpForHost(int i) {
  // 10.0.<hi>.<lo> with lo in 1..250: room for tens of thousands of hosts.
  return MakeIp(10, 0, static_cast<uint8_t>(i / 250), static_cast<uint8_t>(i % 250 + 1));
}

}  // namespace

Fabric::Fabric(const Profile& profile, FabricTopologyConfig topo)
    : profile_(profile), telemetry_(std::make_unique<Telemetry>()) {
  STROM_CHECK_GE(topo.num_hosts, 2);
  STROM_CHECK_GE(topo.num_leaves, 1);
  if (topo.num_leaves == 1) {
    STROM_CHECK_EQ(topo.num_spines, 0) << "single-switch rack has no spine tier";
  } else {
    STROM_CHECK_GE(topo.num_spines, 1) << "multi-leaf fabric needs a spine tier";
  }
  if (Testbed::telemetry_defaults.enable_trace) {
    telemetry_->tracer.Enable(Testbed::telemetry_defaults.sample_every);
  }

  topo.sw.port_rate_bps = profile.link.rate_bps;
  topo.sw.ip_mtu = profile.link.ip_mtu;
  hosts_per_leaf_ = (topo.num_hosts + topo.num_leaves - 1) / topo.num_leaves;

  // Conservative-parallel partition: one logical process per host and per
  // switch, with host 0 reusing sim_ so Fabric::sim() keeps working as the
  // run-loop entry point. Every cross-LP edge is a PointToPointLink, whose
  // propagation delay becomes the scheduler's lookahead.
  const int lp_threads = Testbed::telemetry_defaults.lp_threads;
  if (lp_threads > 0) {
    scheduler_ = std::make_unique<LpScheduler>(lp_threads);
    scheduler_->AddLp(&sim_);
  }
  auto new_lp = [this]() -> Simulator* {
    if (scheduler_ == nullptr) {
      return &sim_;
    }
    lp_sims_.push_back(std::make_unique<Simulator>());
    scheduler_->AddLp(lp_sims_.back().get());
    return lp_sims_.back().get();
  };
  for (int i = 0; i < topo.num_hosts; ++i) {
    host_sims_.push_back(i == 0 ? &sim_ : new_lp());
  }
  for (int l = 0; l < topo.num_leaves; ++l) {
    leaf_sims_.push_back(new_lp());
  }
  for (int s = 0; s < topo.num_spines; ++s) {
    spine_sims_.push_back(new_lp());
  }

  for (int i = 0; i < topo.num_hosts; ++i) {
    arp_.Add(IpForHost(i), MacForHost(i));
  }
  for (int i = 0; i < topo.num_hosts; ++i) {
    nodes_.push_back(std::make_unique<Node>(*host_sims_[i], profile, IpForHost(i),
                                            MacForHost(i), arp_));
    nodes_.back()->AttachTelemetry(telemetry_.get(), i);
  }
  for (int l = 0; l < topo.num_leaves; ++l) {
    leaves_.push_back(std::make_unique<FabricSwitch>(*leaf_sims_[l], topo.sw,
                                                     "leaf" + std::to_string(l)));
  }
  for (int s = 0; s < topo.num_spines; ++s) {
    spines_.push_back(std::make_unique<FabricSwitch>(*spine_sims_[s], topo.sw,
                                                     "spine" + std::to_string(s)));
  }

  // Host links.
  std::vector<int> host_port(topo.num_hosts);
  for (int i = 0; i < topo.num_hosts; ++i) {
    FabricSwitch& sw = *leaves_[LeafOf(i)];
    const int port = sw.AddPort();
    host_port[i] = port;
    PointToPointLink& link = sw.PortLink(port);
    if (scheduler_ != nullptr) {
      // Side 0 is the host endpoint, side 1 the switch (AddPort convention).
      link.BindLp(host_sims_[i], leaf_sims_[LeafOf(i)], scheduler_.get());
    }
    Node* node = nodes_[i].get();
    link.Attach(0, [node](FrameBuf frame, TraceContext trace) {
      node->OnFrame(std::move(frame), trace);
    });
    node->SetFrameSender([&link](FrameBuf frame, TraceContext trace) {
      link.Send(0, std::move(frame), trace);
    });
    sw.AddStaticRoute(MacForHost(i), port);
  }

  // Leaf-spine cables + static routes: leaf l reaches remote host h through
  // spine h % num_spines; spine s reaches host h through its cable to
  // leaf(h). With exact routes everywhere, nothing floods.
  std::vector<std::vector<int>> uplink(leaves_.size());    // [leaf][spine] -> leaf port
  std::vector<std::vector<int>> downlink(spines_.size());  // [spine][leaf] -> spine port
  for (size_t l = 0; l < leaves_.size(); ++l) {
    uplink[l].resize(spines_.size());
  }
  for (size_t s = 0; s < spines_.size(); ++s) {
    downlink[s].resize(leaves_.size());
  }
  for (size_t l = 0; l < leaves_.size(); ++l) {
    for (size_t s = 0; s < spines_.size(); ++s) {
      auto [lp, sp] = leaves_[l]->ConnectTo(*spines_[s]);
      uplink[l][s] = lp;
      downlink[s][l] = sp;
      if (scheduler_ != nullptr) {
        // ConnectTo gives the dialing leaf side 1 and the spine side 0.
        leaves_[l]->PortLink(lp).BindLp(spine_sims_[s], leaf_sims_[l],
                                        scheduler_.get());
      }
    }
  }
  for (int h = 0; h < topo.num_hosts; ++h) {
    const int hl = LeafOf(h);
    for (size_t l = 0; l < leaves_.size(); ++l) {
      if (static_cast<int>(l) != hl) {
        leaves_[l]->AddStaticRoute(MacForHost(h), uplink[l][h % spines_.size()]);
      }
    }
    for (size_t s = 0; s < spines_.size(); ++s) {
      spines_[s]->AddStaticRoute(MacForHost(h), downlink[s][hl]);
    }
  }

  for (size_t l = 0; l < leaves_.size(); ++l) {
    leaves_[l]->AttachTelemetry(telemetry_.get(), leaves_[l]->name());
  }
  for (size_t s = 0; s < spines_.size(); ++s) {
    spines_[s]->AttachTelemetry(telemetry_.get(), spines_[s]->name());
  }
  InitObservability();
  if (scheduler_ != nullptr) {
    // Observers whose callbacks read state across LP boundaries mid-window
    // (trace spans, sampler probes, flow stats, fault-plan recovery) force
    // the windows to execute serially. Still one run at any thread count —
    // and still byte-identical across thread counts — just not concurrent.
    // Captures, the flight recorder and the auditor are sharded/atomic and
    // stay parallel.
    const TestbedTelemetryDefaults& d = Testbed::telemetry_defaults;
    if (telemetry_->tracer.enabled() || d.sample_interval > 0 ||
        d.flow_sink != nullptr || d.fault_plan != nullptr) {
      scheduler_->SetSerializeEpochs(true);
    }
  }
}

void Fabric::InitObservability() {
  const TestbedTelemetryDefaults& d = Testbed::telemetry_defaults;
  if (!d.capture_prefix.empty()) {
    int64_t ordinal = Testbed::run_ordinal;
    if (ordinal < 0) {
      static int capture_counter = 0;
      ordinal = capture_counter++;
    }
    if (ordinal < d.capture_runs) {
      std::string prefix = d.capture_prefix;
      if (ordinal > 0) {
        prefix += ".run" + std::to_string(ordinal);
      }
      EnableCapture(prefix);
    }
  }
  if (d.sample_interval > 0) {
    StartSampling(d.sample_interval);
  }
  if (d.fault_plan != nullptr) {
    ApplyFaultPlan(d.fault_plan);
  }
  if (d.flow_sink != nullptr) {
    flow_stats_ = std::make_unique<FlowStats>();
    for (int i = 0; i < num_hosts(); ++i) {
      nodes_[i]->stack().AttachFlowStats(flow_stats_.get(), i);
    }
    // Flow-stats runs also want the switch-port congestion series; piggyback
    // on the sampler when it is running.
    if (d.sample_interval > 0) {
      for (auto& sw : leaves_) {
        sw->AttachFlowSampler(telemetry_.get(), sw->name());
      }
      for (auto& sw : spines_) {
        sw->AttachFlowSampler(telemetry_.get(), sw->name());
      }
    }
  }
  if (d.flight_recorder || !d.postmortem_stem.empty()) {
    flight_recorder_ = std::make_unique<FlightRecorder>(num_hosts());
    for (int i = 0; i < num_hosts(); ++i) {
      nodes_[i]->stack().AttachFlightRecorder(flight_recorder_.get(), i);
    }
    flight_recorder_->set_auto_dump_stem(
        d.postmortem_stem.empty() ? "postmortem" : d.postmortem_stem);
    RegisterGlobalFlightRecorder(flight_recorder_.get());
  }
  if (d.auditor != nullptr) {
    for (int i = 0; i < num_hosts(); ++i) {
      nodes_[i]->stack().AttachAuditor(d.auditor);
    }
    d.auditor->set_recorder(flight_recorder_.get());
  }
}

void Fabric::RunTeardownAudits() {
  Auditor& auditor = *Testbed::telemetry_defaults.auditor;
  // Every fabric link, in the same (leaf, port) order ApplyFaultPlan uses.
  for (auto& sw : leaves_) {
    for (int port = 0; port < sw->num_ports(); ++port) {
      if (sw->OwnsPortLink(port)) {
        AuditLinkConservation(auditor,
                              sw->name() + ".port" + std::to_string(port),
                              sw->PortLink(port));
      }
    }
  }
  // Per-port egress FIFO conservation on every switch.
  uint64_t ce_marked = 0;
  for (auto& sw : leaves_) {
    sw->AuditConservation(auditor);
    for (int port = 0; port < sw->num_ports(); ++port) {
      ce_marked += sw->counters(port).ce_marked;
    }
  }
  for (auto& sw : spines_) {
    sw->AuditConservation(auditor);
    for (int port = 0; port < sw->num_ports(); ++port) {
      ce_marked += sw->counters(port).ce_marked;
    }
  }
  // CE => BECN => CNP ladder across the whole rack: hosts cannot see more CE
  // marks than switches applied, echo more BECNs than CE marks seen, or
  // receive more CNPs than BECNs were echoed. Duplicated frames (fault
  // injection) may legitimately inflate the receive-side counts.
  uint64_t rx_ce = 0;
  uint64_t tx_becn = 0;
  uint64_t rx_cnp = 0;
  for (int i = 0; i < num_hosts(); ++i) {
    const RoceCounters& c = nodes_[i]->stack().counters();
    rx_ce += c.rx_ecn_ce;
    tx_becn += c.tx_becn;
    rx_cnp += c.rx_cnp;
    auditor.NoteCheck();
    if (c.tx_becn > c.rx_ecn_ce) {
      auditor.Violation("host" + std::to_string(i) +
                        " becn ladder: tx_becn=" + std::to_string(c.tx_becn) +
                        " > rx_ecn_ce=" + std::to_string(c.rx_ecn_ce));
    }
  }
  const uint64_t dup_slack =
      fault_engine_ != nullptr ? fault_engine_->counters().frames_duplicated : 0;
  auditor.NoteCheck();
  if (rx_ce > ce_marked + dup_slack) {
    auditor.Violation("ce ladder: rx_ecn_ce=" + std::to_string(rx_ce) +
                      " > ce_marked=" + std::to_string(ce_marked) +
                      " + dup_slack=" + std::to_string(dup_slack));
  }
  auditor.NoteCheck();
  if (rx_cnp > tx_becn + dup_slack) {
    auditor.Violation("cnp ladder: rx_cnp=" + std::to_string(rx_cnp) +
                      " > tx_becn=" + std::to_string(tx_becn) +
                      " + dup_slack=" + std::to_string(dup_slack));
  }
}

Fabric::~Fabric() {
  const TestbedTelemetryDefaults& d = Testbed::telemetry_defaults;
  if (d.auditor != nullptr) {
    RunTeardownAudits();
  }
  if (d.collector != nullptr ||
      (d.flow_sink != nullptr && flow_stats_ != nullptr)) {
    int64_t ordinal = Testbed::run_ordinal;
    if (ordinal < 0) {
      static uint64_t run_counter = 0;
      ordinal = static_cast<int64_t>(run_counter++);
    }
    const std::string label = "run" + std::to_string(ordinal) + ":" + profile_.name;
    if (d.collector != nullptr) {
      d.collector->Collect(label, *telemetry_, Testbed::run_ordinal);
    }
    if (d.flow_sink != nullptr && flow_stats_ != nullptr) {
      d.flow_sink->Deposit(label, *flow_stats_, Testbed::run_ordinal);
    }
  }
  if (flight_recorder_ != nullptr && !d.postmortem_stem.empty()) {
    const MetricsRegistry::Snapshot snap = telemetry_->metrics.Snap();
    flight_recorder_->DumpAuto("explicit", &snap);
  }
  if (d.auditor != nullptr && d.auditor->recorder() == flight_recorder_.get()) {
    d.auditor->set_recorder(nullptr);
  }
}

void Fabric::ConnectQp(int a, Qpn qpn_a, int b, Qpn qpn_b, Psn psn_a, Psn psn_b) {
  Status st = node(a).stack().ConnectQp(qpn_a, qpn_b, node(b).ip(), psn_a, psn_b);
  STROM_CHECK(st.ok()) << st;
  st = node(b).stack().ConnectQp(qpn_b, qpn_a, node(a).ip(), psn_b, psn_a);
  STROM_CHECK(st.ok()) << st;
}

void Fabric::ReconnectQp(int a, Qpn qpn_a, int b, Qpn qpn_b, Psn psn_a, Psn psn_b) {
  Status st = node(a).stack().ResetQp(qpn_a);
  STROM_CHECK(st.ok()) << st;
  st = node(b).stack().ResetQp(qpn_b);
  STROM_CHECK(st.ok()) << st;
  ConnectQp(a, qpn_a, b, qpn_b, psn_a, psn_b);
}

void Fabric::ApplyFaultPlan(std::shared_ptr<const FaultPlan> plan) {
  STROM_CHECK(fault_engine_ == nullptr) << "fault plan already applied";
  STROM_CHECK(plan != nullptr);
  if (scheduler_ != nullptr) {
    // Fault recovery (QP reconnects) touches stacks across LP boundaries.
    scheduler_->SetSerializeEpochs(true);
  }
  fault_engine_ = std::make_unique<FaultEngine>(sim_, std::move(plan));
  // Spines own no links (cables belong to the leaf that dialed ConnectTo),
  // so (leaf, port) order over owned links enumerates every fabric link
  // exactly once: host links first per leaf, then that leaf's uplinks.
  int link_ordinal = 0;
  for (auto& sw : leaves_) {
    for (int port = 0; port < sw->num_ports(); ++port) {
      if (sw->OwnsPortLink(port)) {
        fault_engine_->AttachLink(sw->PortLink(port), 2 * link_ordinal);
        ++link_ordinal;
      }
    }
  }
  for (int i = 0; i < num_hosts(); ++i) {
    fault_engine_->AttachDma(i, nodes_[i]->dma());
  }
  ArmCrashEpisodes();
}

void Fabric::ArmCrashEpisodes() {
  bool any_crash = false;
  for (const FaultEpisode& ep : fault_engine_->plan().episodes) {
    if (IsCrashFault(ep.type)) {
      any_crash = true;
      break;
    }
  }
  if (!any_crash) {
    return;
  }
  for (int i = 0; i < num_hosts(); ++i) {
    // Opt the DMA completion paths into crash-epoch guards; clean runs keep
    // the zero-allocation captures.
    nodes_[i]->dma().EnableCrashFaults();
    for (FaultTargetKind kind : {FaultTargetKind::kHost, FaultTargetKind::kNic}) {
      fault_engine_->ArmCrashes(
          kind, i, nodes_[i]->sim(),
          [this, kind, i](const FaultEpisode& ep) { OnCrashEpisode(kind, i, ep); },
          [this, kind, i](const FaultEpisode& ep) { OnRestartEpisode(kind, i, ep); });
    }
  }
  // Switch numbering in plans: leaves 0..L-1, then spines L..L+S-1.
  const int num_switches = num_leaves() + num_spines();
  for (int s = 0; s < num_switches; ++s) {
    Simulator& sw_sim = *(s < num_leaves() ? leaf_sims_[s]
                                           : spine_sims_[s - num_leaves()]);
    fault_engine_->ArmCrashes(
        FaultTargetKind::kSwitch, s, sw_sim,
        [this, s](const FaultEpisode& ep) {
          OnCrashEpisode(FaultTargetKind::kSwitch, s, ep);
        },
        [this, s](const FaultEpisode& ep) {
          OnRestartEpisode(FaultTargetKind::kSwitch, s, ep);
        });
  }
}

namespace {
uint8_t CrashOpcode(FaultTargetKind kind) {
  switch (kind) {
    case FaultTargetKind::kHost:
      return 0;
    case FaultTargetKind::kNic:
      return 1;
    default:
      return 2;  // kSwitch
  }
}
}  // namespace

void Fabric::OnCrashEpisode(FaultTargetKind kind, int index, const FaultEpisode& ep) {
  SimTime now = 0;
  std::string what;
  if (kind == FaultTargetKind::kSwitch) {
    FabricSwitch& sw = switch_at(index);
    sw.Crash();
    now = (index < num_leaves() ? leaf_sims_[index]
                                : spine_sims_[index - num_leaves()])
              ->now();
    what = sw.name();
  } else {
    Node& n = *nodes_[index];
    n.Crash(kind);
    now = n.sim().now();
    what = (kind == FaultTargetKind::kHost ? "host" : "nic") + std::to_string(index);
  }
  if (flight_recorder_ != nullptr) {
    // Switch crashes land in ring 0 (they have no host ring of their own);
    // safe because fault plans force serialized epochs, so rings never see
    // two concurrent writers.
    const int ring = kind == FaultTargetKind::kSwitch ? 0 : index;
    flight_recorder_->Record(now, ring, FlightRecordType::kCrash, CrashOpcode(kind),
                             0, 0, uint32_t(index));
    if (Testbed::telemetry_defaults.dump_on_crash) {
      const MetricsRegistry::Snapshot snap = telemetry_->metrics.Snap();
      flight_recorder_->DumpAuto("crash: " + what, &snap);
    }
  }
  for (const CrashListener& listener : crash_listeners_) {
    listener(ep, /*restarted=*/false);
  }
}

void Fabric::OnRestartEpisode(FaultTargetKind kind, int index, const FaultEpisode& ep) {
  SimTime now = 0;
  if (kind == FaultTargetKind::kSwitch) {
    switch_at(index).Restart();
    now = (index < num_leaves() ? leaf_sims_[index]
                                : spine_sims_[index - num_leaves()])
              ->now();
  } else {
    Node& n = *nodes_[index];
    n.Restart(kind);
    now = n.sim().now();
  }
  if (flight_recorder_ != nullptr) {
    const int ring = kind == FaultTargetKind::kSwitch ? 0 : index;
    flight_recorder_->Record(now, ring, FlightRecordType::kRestart, CrashOpcode(kind),
                             0, 0, uint32_t(index));
  }
  for (const CrashListener& listener : crash_listeners_) {
    listener(ep, /*restarted=*/true);
  }
}

std::vector<std::string> Fabric::EnableCapture(const std::string& prefix) {
  std::vector<std::string> paths;
  auto add = [&](const std::string& path) -> PcapWriter* {
    captures_.push_back(std::make_unique<PcapWriter>(path));
    if (!captures_.back()->status().ok()) {
      STROM_LOG(kWarning) << captures_.back()->status();
    }
    paths.push_back(path);
    return captures_.back().get();
  };
  PcapWriter* fabric_writer = add(prefix + ".fabric.pcapng");
  for (auto& sw : leaves_) {
    sw->AttachCapture(fabric_writer);
  }
  for (auto& sw : spines_) {
    sw->AttachCapture(fabric_writer);  // no-op today: spines own no links
  }
  for (int i = 0; i < num_hosts(); ++i) {
    nodes_[i]->AttachCapture(add(prefix + ".node" + std::to_string(i) + ".nic.pcapng"), i);
  }
  if (scheduler_ != nullptr) {
    // Each capture interface is written by exactly one LP; buffering and
    // sorting at Close() makes the files byte-identical at any thread count.
    for (auto& capture : captures_) {
      capture->EnableDeterministicMerge();
    }
  }
  return paths;
}

void Fabric::StartSampling(SimTime interval) {
  STROM_CHECK_GT(interval, 0);
  if (scheduler_ != nullptr) {
    scheduler_->SetSerializeEpochs(true);  // probes read every LP's state
  }
  for (int i = 0; i < num_hosts(); ++i) {
    nodes_[i]->AttachSampler(telemetry_.get(), i);
  }
  for (auto& sw : leaves_) {
    sw->AttachSampler(telemetry_.get(), sw->name());
  }
  for (auto& sw : spines_) {
    sw->AttachSampler(telemetry_.get(), sw->name());
  }
  ScheduleSample(interval);
}

void Fabric::ScheduleSample(SimTime interval) {
  sim_.Schedule(interval, [this, interval] {
    telemetry_->sampler.Sample(sim_.now());
    const size_t pending = scheduler_ != nullptr ? scheduler_->pending_events()
                                                 : sim_.pending_events();
    if (pending > 0) {
      ScheduleSample(interval);
    }
  });
}

}  // namespace strom
