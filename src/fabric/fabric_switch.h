// Output-queued Ethernet switch with congestion signaling, the building block
// of rack-scale topologies (src/fabric/fabric.h). Unlike the store-and-forward
// EthernetSwitch — whose per-port links hide queueing inside their busy-until
// cursors — this switch keeps an *explicit* per-port egress FIFO and releases
// exactly one frame to the wire at a time. That makes queue depth an
// observable quantity, which is what congestion control needs:
//
//   * ECN: a frame enqueued while the egress queue is at or above
//     `ecn_threshold_bytes` is CE-marked in place (if it is ECT; see
//     MarkEcnCe), the signal DCQCN-enabled RoCE stacks react to.
//   * Tail drop: a frame that would push the queue past `egress_queue_bytes`
//     is dropped and counted; the RoCE go-back-N machinery recovers it.
//   * PFC (optional): crossing `pfc_xoff_bytes` sends an 802.3x pause frame
//     to the ingress port that contributed the frame; draining below
//     `pfc_xon_bytes` sends the quanta=0 resume. Hop-local only — pause
//     frames arriving *at* the switch are consumed and ignored (a
//     deliberate simplification; hosts honor pause, switches do not).
//
// Ports come in two flavors: endpoint ports (AddPort — the switch owns the
// link and transmits on side 1) and cable ports (ConnectTo — the callee owns
// the link, the peer switch transmits on side 0). Forwarding uses a static
// MAC table plus source learning, flooding unknown destinations.
#ifndef SRC_FABRIC_FABRIC_SWITCH_H_
#define SRC_FABRIC_FABRIC_SWITCH_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/netsim/link.h"

namespace strom {

class Auditor;

struct FabricSwitchConfig {
  uint64_t port_rate_bps = Gbps(10);
  SimTime forwarding_latency = Ns(600);  // lookup + crossbar, per frame
  size_t ip_mtu = 1500;
  // Egress queue capacity; a frame that would exceed it is tail-dropped.
  size_t egress_queue_bytes = 256 * 1024;
  // CE-mark ECT frames enqueued at or above this depth (DCQCN's Kmax=Kmin).
  size_t ecn_threshold_bytes = 64 * 1024;
  // 802.3x pause toward the contributing ingress port. Off by default: ECN
  // is the primary congestion signal; pause is the lossless-mode variant.
  bool pfc = false;
  size_t pfc_xoff_bytes = 128 * 1024;
  size_t pfc_xon_bytes = 32 * 1024;
  uint16_t pfc_quanta = 0xFFFF;  // effectively "until resumed"
};

struct FabricPortCounters {
  uint64_t frames_enqueued = 0;
  uint64_t frames_dequeued = 0;
  uint64_t ce_marked = 0;
  uint64_t tail_drops = 0;
  uint64_t pause_tx = 0;   // xoff frames sent upstream
  uint64_t resume_tx = 0;  // xon (quanta = 0) frames sent upstream
  uint64_t queue_bytes_peak = 0;
  // Frames sitting in this egress FIFO when the switch crashed. Conservation
  // becomes enqueued == dequeued + queued + crash_drops.
  uint64_t crash_drops = 0;
};

class FabricSwitch {
 public:
  FabricSwitch(Simulator& sim, FabricSwitchConfig config, std::string name = "fsw");

  // Endpoint-facing port: the switch owns the link and transmits on side 1;
  // attach the endpoint to side 0. Returns the port index.
  int AddPort();

  // Inter-switch cable: creates one full-duplex link owned by *this* switch.
  // Returns {port on this switch, port on peer}. Frames egressing either
  // port arrive at the other switch's ingress.
  std::pair<int, int> ConnectTo(FabricSwitch& peer);

  PointToPointLink& PortLink(int port) { return *ports_[port].link; }
  // The link side this switch transmits on (1 for owned ports/cables, 0 for
  // the peer end of a cable). Fault attachments need it to aim at a hop.
  int PortTxSide(int port) const { return ports_[port].tx_side; }
  bool OwnsPortLink(int port) const { return ports_[port].owned_link != nullptr; }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  void AddStaticRoute(const MacAddr& mac, int port);

  // Taps every *owned* link (cable peer ends are tapped by the owner, so a
  // cable appears once). Interfaces are "<switch name>.port<i>.{0to1,1to0}".
  void AttachCapture(PcapWriter* writer);
  // Per-port gauges under "<process>.port<i>.*".
  void AttachTelemetry(Telemetry* telemetry, const std::string& process);
  // Per-port sampler probes: instantaneous queue_bytes plus cumulative
  // ce_marked / tail_drops, so timeseries show the congestion dynamics.
  void AttachSampler(Telemetry* telemetry, const std::string& process);
  // Extended per-port probes for --flow-stats runs: pause/resume activity and
  // enqueue/dequeue counts on top of the basic AttachSampler set. A separate
  // method so default runs keep their sampler output byte-identical.
  void AttachFlowSampler(Telemetry* telemetry, const std::string& process);

  // Per-port frame conservation: every frame enqueued was either dequeued or
  // is still sitting in the FIFO (tail drops never enter the queue and are
  // accounted separately). Valid at any point; teardown is the usual one.
  void AuditConservation(Auditor& auditor) const;

  // Frames currently queued on `port`'s egress FIFO.
  size_t PortQueueFrames(int port) const { return ports_[port].queue.size(); }

  // Crash-stop: every egress FIFO is dropped on the floor (pooled frames
  // released, drops counted per port so conservation audits stay exact), TX
  // serialization state dies, and until Restart() every arriving frame —
  // including ones already inside the forwarding pipeline — is discarded.
  // The MAC table and static routes survive (stable configuration).
  void Crash();
  void Restart();
  bool alive() const { return alive_; }
  // Frames discarded at ingress/forwarding while the switch was dead.
  uint64_t crash_ingress_drops() const { return crash_ingress_drops_; }

  const FabricPortCounters& counters(int port) const { return ports_[port].counters; }
  const std::string& name() const { return name_; }

  uint64_t frames_forwarded() const { return frames_forwarded_; }
  uint64_t frames_flooded() const { return frames_flooded_; }

 private:
  struct Pending {
    FrameBuf frame;
    TraceContext trace;
    int in_port;
  };
  struct Port {
    std::unique_ptr<PointToPointLink> owned_link;  // null on the peer end of a cable
    PointToPointLink* link = nullptr;
    int tx_side = 1;
    std::deque<Pending> queue;
    size_t queued_bytes = 0;
    bool tx_busy = false;
    std::set<int> paused_ingress;  // ingress ports xoff'd because of this queue
    FabricPortCounters counters;
  };

  int AddPortEntry(std::unique_ptr<PointToPointLink> owned, PointToPointLink* link,
                   int tx_side);
  void OnFrame(int in_port, FrameBuf frame, TraceContext trace);
  void Enqueue(int out_port, int in_port, FrameBuf frame, TraceContext trace);
  void DequeueNext(int out_port);
  void SendPause(int ingress_port, uint16_t quanta);

  Simulator& sim_;
  FabricSwitchConfig config_;
  std::string name_;
  MacAddr mac_;
  std::vector<Port> ports_;
  std::map<MacAddr, int> mac_table_;
  uint64_t frames_forwarded_ = 0;
  uint64_t frames_flooded_ = 0;
  bool alive_ = true;
  uint64_t crash_ingress_drops_ = 0;
  // Orphans per-port TX release events scheduled before a crash.
  uint64_t crash_epoch_ = 0;
};

}  // namespace strom

#endif  // SRC_FABRIC_FABRIC_SWITCH_H_
