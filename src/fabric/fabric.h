// Rack-scale topology builder: k hosts behind congestion-aware FabricSwitch
// fabric, either a single-switch rack (num_leaves = 1, num_spines = 0) or a
// two-tier leaf/spine. The class mirrors Testbed — same Node, same
// process-wide TestbedTelemetryDefaults (collector deposits, pcapng capture,
// sampling, fault plans), same ConnectQp/ReconnectQp out-of-band handshake —
// so benches and tests move between the 2-node cable and a rack by swapping
// the fixture.
//
// Placement and routing are static and deterministic:
//   * host i lives on leaf i / ceil(hosts/leaves);
//   * cross-leaf traffic to host h uses spine h % num_spines (per-destination
//     spine striping — no per-flow hashing, no RNG);
//   * every switch carries exact static routes, so nothing floods after
//     construction.
#ifndef SRC_FABRIC_FABRIC_H_
#define SRC_FABRIC_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fabric/fabric_switch.h"
#include "src/faults/fault_engine.h"
#include "src/testbed/testbed.h"

namespace strom {

class LpScheduler;

struct FabricTopologyConfig {
  int num_hosts = 4;
  int num_leaves = 1;
  int num_spines = 0;  // must be 0 iff num_leaves == 1
  // Switch knobs (queue cap, ECN threshold, PFC). port_rate_bps and ip_mtu
  // are overridden from the profile's link config at construction.
  FabricSwitchConfig sw;
};

class Fabric {
 public:
  Fabric(const Profile& profile, FabricTopologyConfig topo);
  ~Fabric();

  // In conservative-parallel mode (TestbedTelemetryDefaults.lp_threads > 0)
  // this is host 0's logical process; its run loops delegate to the LP
  // scheduler and drive the whole ensemble, so callers need no changes.
  Simulator& sim() { return sim_; }
  // Null unless lp_threads > 0.
  LpScheduler* scheduler() { return scheduler_.get(); }
  Telemetry& telemetry() { return *telemetry_; }
  const Profile& profile() const { return profile_; }

  Node& node(int i) { return *nodes_.at(i); }
  int num_hosts() const { return static_cast<int>(nodes_.size()); }

  FabricSwitch& leaf(int i) { return *leaves_.at(i); }
  FabricSwitch& spine(int i) { return *spines_.at(i); }
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int num_spines() const { return static_cast<int>(spines_.size()); }
  int LeafOf(int host) const { return host / hosts_per_leaf_; }

  // Out-of-band QP handshake / error recovery, same contract as Testbed.
  void ConnectQp(int a, Qpn qpn_a, int b, Qpn qpn_b, Psn psn_a = 1000, Psn psn_b = 5000);
  void ReconnectQp(int a, Qpn qpn_a, int b, Qpn qpn_b, Psn psn_a = 2000, Psn psn_b = 6000);

  // Attaches a FaultEngine to every fabric link and DMA engine. Links are
  // numbered in (leaf, port) order over *owned* links; link k's endpoint/peer
  // side is global target 2k and the owning switch's side is 2k+1, so plans
  // can flap individual host links or leaf-spine cables.
  void ApplyFaultPlan(std::shared_ptr<const FaultPlan> plan);
  FaultEngine* fault_engine() { return fault_engine_.get(); }

  // Crash/restart observer, same contract as Testbed::AddCrashListener.
  // Switch episodes use FaultTargetKind::kSwitch with target indexing leaves
  // 0..L-1 then spines L..L+S-1.
  void AddCrashListener(CrashListener listener) {
    crash_listeners_.push_back(std::move(listener));
  }
  // Switch `index` in the crash-episode numbering (leaves, then spines).
  FabricSwitch& switch_at(int index) {
    return index < num_leaves() ? *leaves_.at(index)
                                : *spines_.at(index - num_leaves());
  }

  // "<prefix>.fabric.pcapng" taps every switch port (interfaces
  // "<switch>.port<i>.*"); "<prefix>.node<i>.nic.pcapng" taps each NIC.
  std::vector<std::string> EnableCapture(const std::string& prefix);
  void StartSampling(SimTime interval);

  FlightRecorder* flight_recorder() { return flight_recorder_.get(); }
  FlowStats* flow_stats() { return flow_stats_.get(); }

 private:
  void InitObservability();
  void ScheduleSample(SimTime interval);
  void RunTeardownAudits();
  void ArmCrashEpisodes();
  void OnCrashEpisode(FaultTargetKind kind, int index, const FaultEpisode& ep);
  void OnRestartEpisode(FaultTargetKind kind, int index, const FaultEpisode& ep);

  Profile profile_;
  Simulator sim_;  // host 0's LP in parallel mode; the only sim otherwise
  // Conservative-parallel partition: one LP per host (host 0 reuses sim_)
  // and one per switch. Declared before nodes_/leaves_/spines_ so the
  // components die first, and before scheduler_ so worker threads are joined
  // while every simulator is still alive.
  std::vector<std::unique_ptr<Simulator>> lp_sims_;
  std::vector<Simulator*> host_sims_;
  std::vector<Simulator*> leaf_sims_;
  std::vector<Simulator*> spine_sims_;
  std::unique_ptr<LpScheduler> scheduler_;
  ArpTable arp_;
  std::unique_ptr<Telemetry> telemetry_;
  int hosts_per_leaf_ = 1;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<FabricSwitch>> leaves_;
  std::vector<std::unique_ptr<FabricSwitch>> spines_;
  std::unique_ptr<FaultEngine> fault_engine_;
  std::unique_ptr<FlowStats> flow_stats_;
  std::unique_ptr<FlightRecorder> flight_recorder_;
  std::vector<std::unique_ptr<PcapWriter>> captures_;
  std::vector<CrashListener> crash_listeners_;
};

}  // namespace strom

#endif  // SRC_FABRIC_FABRIC_H_
