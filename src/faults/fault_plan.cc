#include "src/faults/fault_plan.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/rng.h"

namespace strom {
namespace {

struct TypeInfo {
  const char* name;
  FaultType type;
  bool link;
};

constexpr TypeInfo kTypes[] = {
    {"burst_loss", FaultType::kBurstLoss, true},
    {"reorder", FaultType::kReorder, true},
    {"duplicate", FaultType::kDuplicate, true},
    {"jitter", FaultType::kJitter, true},
    {"down", FaultType::kLinkDown, true},
    {"silent_drop", FaultType::kSilentDrop, true},
    {"read_error", FaultType::kDmaReadError, false},
    {"write_error", FaultType::kDmaWriteError, false},
};

bool ParseTime(const std::string& tok, SimTime* out) {
  if (tok == "-") {
    *out = -1;
    return true;
  }
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || v < 0) {
    return false;
  }
  const std::string unit(end);
  double scale = 0;
  if (unit == "ns") {
    scale = kNs;
  } else if (unit == "us") {
    scale = kUs;
  } else if (unit == "ms") {
    scale = kMs;
  } else if (unit == "s") {
    scale = kSec;
  } else {
    return false;
  }
  *out = SimTime(v * scale);
  return true;
}

std::string FormatTime(SimTime t) {
  if (t < 0) {
    return "-";
  }
  // Pick the largest unit that divides t exactly so ToString round-trips.
  if (t % kSec == 0) {
    return std::to_string(t / kSec) + "s";
  }
  if (t % kMs == 0) {
    return std::to_string(t / kMs) + "ms";
  }
  if (t % kUs == 0) {
    return std::to_string(t / kUs) + "us";
  }
  return std::to_string(t / kNs) + "ns";
}

std::string FormatProb(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

bool ParseProb(const std::string& tok, double* out) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || v < 0 || v > 1) {
    return false;
  }
  *out = v;
  return true;
}

Status LineError(int line, const std::string& msg) {
  return InvalidArgumentError("fault plan line " + std::to_string(line) + ": " + msg);
}

}  // namespace

const char* FaultTypeName(FaultType type) {
  for (const TypeInfo& info : kTypes) {
    if (info.type == type) {
      return info.name;
    }
  }
  return "?";
}

bool IsLinkFault(FaultType type) {
  for (const TypeInfo& info : kTypes) {
    if (info.type == type) {
      return info.link;
    }
  }
  return false;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    std::istringstream line(raw);
    std::vector<std::string> tok;
    std::string t;
    while (line >> t) {
      tok.push_back(t);
    }
    if (tok.empty()) {
      continue;
    }
    if (tok[0] == "seed") {
      if (tok.size() != 2) {
        return LineError(lineno, "expected 'seed <N>'");
      }
      char* end = nullptr;
      plan.seed = std::strtoull(tok[1].c_str(), &end, 10);
      if (*end != '\0') {
        return LineError(lineno, "bad seed '" + tok[1] + "'");
      }
      continue;
    }
    if (tok.size() < 4) {
      return LineError(lineno, "expected '<target> <type> <start> <end> [key=value ...]'");
    }
    FaultEpisode ep;
    // Target.
    const std::string& target = tok[0];
    bool target_is_link;
    std::string index;
    if (target.rfind("link", 0) == 0) {
      target_is_link = true;
      index = target.substr(4);
    } else if (target.rfind("dma", 0) == 0) {
      target_is_link = false;
      index = target.substr(3);
    } else {
      return LineError(lineno, "unknown target '" + target + "'");
    }
    if (index == "*") {
      ep.target = -1;
    } else {
      char* end = nullptr;
      ep.target = int(std::strtol(index.c_str(), &end, 10));
      if (index.empty() || *end != '\0' || ep.target < 0) {
        return LineError(lineno, "bad target index '" + target + "'");
      }
    }
    // Type.
    const TypeInfo* info = nullptr;
    for (const TypeInfo& candidate : kTypes) {
      if (tok[1] == candidate.name) {
        info = &candidate;
        break;
      }
    }
    if (info == nullptr) {
      return LineError(lineno, "unknown fault type '" + tok[1] + "'");
    }
    if (info->link != target_is_link) {
      return LineError(lineno, std::string("fault type '") + info->name +
                                   "' does not apply to target '" + target + "'");
    }
    ep.type = info->type;
    // Window.
    if (!ParseTime(tok[2], &ep.start) || ep.start < 0) {
      return LineError(lineno, "bad start time '" + tok[2] + "'");
    }
    if (!ParseTime(tok[3], &ep.end)) {
      return LineError(lineno, "bad end time '" + tok[3] + "'");
    }
    if (ep.end >= 0 && ep.end < ep.start) {
      return LineError(lineno, "episode ends before it starts");
    }
    // key=value parameters.
    for (size_t i = 4; i < tok.size(); ++i) {
      const size_t eq = tok[i].find('=');
      if (eq == std::string::npos) {
        return LineError(lineno, "expected key=value, got '" + tok[i] + "'");
      }
      const std::string key = tok[i].substr(0, eq);
      const std::string value = tok[i].substr(eq + 1);
      bool ok = false;
      if (key == "p_gb") {
        ok = ParseProb(value, &ep.p_good_to_bad);
      } else if (key == "p_bg") {
        ok = ParseProb(value, &ep.p_bad_to_good);
      } else if (key == "loss_good") {
        ok = ParseProb(value, &ep.loss_good);
      } else if (key == "loss_bad") {
        ok = ParseProb(value, &ep.loss_bad);
      } else if (key == "p") {
        ok = ParseProb(value, &ep.p);
      } else if (key == "delay" || key == "max") {
        ok = ParseTime(value, &ep.delay) && ep.delay >= 0;
      } else {
        return LineError(lineno, "unknown key '" + key + "'");
      }
      if (!ok) {
        return LineError(lineno, "bad value for '" + key + "': '" + value + "'");
      }
    }
    plan.episodes.push_back(ep);
  }
  return plan;
}

Result<FaultPlan> FaultPlan::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open fault plan '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<FaultPlan> plan = Parse(text.str());
  if (!plan.ok()) {
    return Status(plan.status().code(), path + ": " + plan.status().message());
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed " << seed << "\n";
  for (const FaultEpisode& ep : episodes) {
    os << (IsLinkFault(ep.type) ? "link" : "dma");
    if (ep.target < 0) {
      os << "*";
    } else {
      os << ep.target;
    }
    os << ' ' << FaultTypeName(ep.type) << ' ' << FormatTime(ep.start) << ' '
       << FormatTime(ep.end);
    switch (ep.type) {
      case FaultType::kBurstLoss:
        os << " p_gb=" << FormatProb(ep.p_good_to_bad) << " p_bg=" << FormatProb(ep.p_bad_to_good)
           << " loss_good=" << FormatProb(ep.loss_good) << " loss_bad=" << FormatProb(ep.loss_bad);
        break;
      case FaultType::kReorder:
        os << " p=" << FormatProb(ep.p) << " delay=" << FormatTime(ep.delay);
        break;
      case FaultType::kDuplicate:
      case FaultType::kSilentDrop:
      case FaultType::kDmaReadError:
      case FaultType::kDmaWriteError:
        os << " p=" << FormatProb(ep.p);
        break;
      case FaultType::kJitter:
        os << " max=" << FormatTime(ep.delay);
        break;
      case FaultType::kLinkDown:
        break;
    }
    os << "\n";
  }
  return os.str();
}

FaultPlan MakeRandomPlan(uint64_t seed, SimTime horizon) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC845u);
  // Windows are drawn in whole nanoseconds: SimTime ticks are picoseconds,
  // but the plan text format bottoms out at "ns", and generated plans must
  // survive the ToString() -> Parse() round trip exactly (CI replays dumped
  // plan artifacts).
  const auto window = [&](SimTime min_len, SimTime max_len) {
    FaultEpisode ep;
    ep.start = Ns(int64_t(rng.Below(uint64_t(horizon / 2 / kNs))));
    ep.end = ep.start + Ns(int64_t(rng.Range(uint64_t(min_len / kNs), uint64_t(max_len / kNs))));
    return ep;
  };
  const int n = int(rng.Range(2, 5));
  for (int i = 0; i < n; ++i) {
    FaultEpisode ep = window(horizon / 20, horizon / 4);
    ep.target = -1;  // all link sides
    switch (rng.Below(4)) {
      case 0:
        ep.type = FaultType::kBurstLoss;
        ep.p_good_to_bad = 0.01 + 0.04 * rng.NextDouble();
        ep.p_bad_to_good = 0.2 + 0.3 * rng.NextDouble();
        ep.loss_good = 0;
        ep.loss_bad = 0.3 + 0.4 * rng.NextDouble();
        break;
      case 1:
        ep.type = FaultType::kReorder;
        ep.p = 0.02 + 0.05 * rng.NextDouble();
        ep.delay = Us(int64_t(rng.Range(2, 20)));
        break;
      case 2:
        ep.type = FaultType::kDuplicate;
        ep.p = 0.02 + 0.08 * rng.NextDouble();
        break;
      default:
        ep.type = FaultType::kJitter;
        ep.delay = Ns(int64_t(rng.Range(100, 3000)));
        break;
    }
    plan.episodes.push_back(ep);
  }
  // A short, hard link flap: long enough to force retransmissions, short
  // enough that the default retry budget usually (but not always) survives.
  {
    FaultEpisode ep = window(horizon / 50, horizon / 10);
    ep.target = -1;
    ep.type = FaultType::kLinkDown;
    plan.episodes.push_back(ep);
  }
  if (rng.Chance(0.5)) {
    FaultEpisode ep = window(horizon / 20, horizon / 5);
    ep.target = -1;
    ep.type = rng.Chance(0.5) ? FaultType::kDmaReadError : FaultType::kDmaWriteError;
    ep.p = 0.05 + 0.1 * rng.NextDouble();
    plan.episodes.push_back(ep);
  }
  return plan;
}

}  // namespace strom
