#include "src/faults/fault_plan.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/rng.h"

namespace strom {
namespace {

struct TypeInfo {
  const char* name;
  FaultType type;
  FaultTargetKind kind;
};

// "crash" appears once per component kind: the type name in the plan text is
// shared and the target prefix picks the concrete FaultType.
constexpr TypeInfo kTypes[] = {
    {"burst_loss", FaultType::kBurstLoss, FaultTargetKind::kLink},
    {"reorder", FaultType::kReorder, FaultTargetKind::kLink},
    {"duplicate", FaultType::kDuplicate, FaultTargetKind::kLink},
    {"jitter", FaultType::kJitter, FaultTargetKind::kLink},
    {"down", FaultType::kLinkDown, FaultTargetKind::kLink},
    {"silent_drop", FaultType::kSilentDrop, FaultTargetKind::kLink},
    {"read_error", FaultType::kDmaReadError, FaultTargetKind::kDma},
    {"write_error", FaultType::kDmaWriteError, FaultTargetKind::kDma},
    {"crash", FaultType::kHostCrash, FaultTargetKind::kHost},
    {"crash", FaultType::kNicCrash, FaultTargetKind::kNic},
    {"crash", FaultType::kSwitchCrash, FaultTargetKind::kSwitch},
};

struct PrefixInfo {
  const char* prefix;
  size_t len;
  FaultTargetKind kind;
};

// Longest prefixes first so "switch" is never shadowed; none of the current
// prefixes is a prefix of another, but keep the order defensive.
constexpr PrefixInfo kPrefixes[] = {
    {"switch", 6, FaultTargetKind::kSwitch},
    {"link", 4, FaultTargetKind::kLink},
    {"host", 4, FaultTargetKind::kHost},
    {"dma", 3, FaultTargetKind::kDma},
    {"nic", 3, FaultTargetKind::kNic},
};

const char* TargetPrefix(FaultTargetKind kind) {
  for (const PrefixInfo& p : kPrefixes) {
    if (p.kind == kind) {
      return p.prefix;
    }
  }
  return "?";
}

bool ParseTime(const std::string& tok, SimTime* out) {
  if (tok == "-") {
    *out = -1;
    return true;
  }
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || v < 0) {
    return false;
  }
  const std::string unit(end);
  double scale = 0;
  if (unit == "ns") {
    scale = kNs;
  } else if (unit == "us") {
    scale = kUs;
  } else if (unit == "ms") {
    scale = kMs;
  } else if (unit == "s") {
    scale = kSec;
  } else {
    return false;
  }
  *out = SimTime(v * scale);
  return true;
}

std::string FormatTime(SimTime t) {
  if (t < 0) {
    return "-";
  }
  // Pick the largest unit that divides t exactly so ToString round-trips.
  if (t % kSec == 0) {
    return std::to_string(t / kSec) + "s";
  }
  if (t % kMs == 0) {
    return std::to_string(t / kMs) + "ms";
  }
  if (t % kUs == 0) {
    return std::to_string(t / kUs) + "us";
  }
  return std::to_string(t / kNs) + "ns";
}

std::string FormatProb(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

bool ParseProb(const std::string& tok, double* out) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || v < 0 || v > 1) {
    return false;
  }
  *out = v;
  return true;
}

Status LineError(int line, const std::string& msg) {
  return InvalidArgumentError("fault plan line " + std::to_string(line) + ": " + msg);
}

}  // namespace

const char* FaultTypeName(FaultType type) {
  for (const TypeInfo& info : kTypes) {
    if (info.type == type) {
      return info.name;
    }
  }
  return "?";
}

FaultTargetKind FaultTargetKindOf(FaultType type) {
  for (const TypeInfo& info : kTypes) {
    if (info.type == type) {
      return info.kind;
    }
  }
  return FaultTargetKind::kLink;
}

bool IsLinkFault(FaultType type) {
  return FaultTargetKindOf(type) == FaultTargetKind::kLink;
}

bool IsCrashFault(FaultType type) {
  return type == FaultType::kHostCrash || type == FaultType::kNicCrash ||
         type == FaultType::kSwitchCrash;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.resize(hash);
    }
    std::istringstream line(raw);
    std::vector<std::string> tok;
    std::string t;
    while (line >> t) {
      tok.push_back(t);
    }
    if (tok.empty()) {
      continue;
    }
    if (tok[0] == "seed") {
      if (tok.size() != 2) {
        return LineError(lineno, "expected 'seed <N>'");
      }
      char* end = nullptr;
      plan.seed = std::strtoull(tok[1].c_str(), &end, 10);
      if (*end != '\0') {
        return LineError(lineno, "bad seed '" + tok[1] + "'");
      }
      continue;
    }
    if (tok.size() < 4) {
      return LineError(lineno, "expected '<target> <type> <start> <end> [key=value ...]'");
    }
    FaultEpisode ep;
    // Target.
    const std::string& target = tok[0];
    const PrefixInfo* prefix = nullptr;
    for (const PrefixInfo& candidate : kPrefixes) {
      if (target.rfind(candidate.prefix, 0) == 0) {
        prefix = &candidate;
        break;
      }
    }
    if (prefix == nullptr) {
      return LineError(lineno, "unknown target '" + target + "'");
    }
    const std::string index = target.substr(prefix->len);
    if (index == "*") {
      ep.target = -1;
    } else {
      char* end = nullptr;
      ep.target = int(std::strtol(index.c_str(), &end, 10));
      if (index.empty() || *end != '\0' || ep.target < 0) {
        return LineError(lineno, "bad target index '" + target + "'");
      }
    }
    // Type: the name plus the target kind pick the entry, so "crash" resolves
    // to host/nic/switch crash by prefix.
    const TypeInfo* info = nullptr;
    bool name_known = false;
    for (const TypeInfo& candidate : kTypes) {
      if (tok[1] == candidate.name) {
        name_known = true;
        if (candidate.kind == prefix->kind) {
          info = &candidate;
          break;
        }
      }
    }
    if (!name_known) {
      return LineError(lineno, "unknown fault type '" + tok[1] + "'");
    }
    if (info == nullptr) {
      return LineError(lineno, std::string("fault type '") + tok[1] +
                                   "' does not apply to target '" + target + "'");
    }
    ep.type = info->type;
    // Window.
    if (!ParseTime(tok[2], &ep.start) || ep.start < 0) {
      return LineError(lineno, "bad start time '" + tok[2] + "'");
    }
    if (!ParseTime(tok[3], &ep.end)) {
      return LineError(lineno, "bad end time '" + tok[3] + "'");
    }
    if (ep.end >= 0 && ep.end < ep.start) {
      return LineError(lineno, "episode ends before it starts");
    }
    if (IsCrashFault(ep.type)) {
      ep.end = -1;  // a crash is an instant; any window text is ignored
    }
    // key=value parameters.
    for (size_t i = 4; i < tok.size(); ++i) {
      const size_t eq = tok[i].find('=');
      if (eq == std::string::npos) {
        return LineError(lineno, "expected key=value, got '" + tok[i] + "'");
      }
      const std::string key = tok[i].substr(0, eq);
      const std::string value = tok[i].substr(eq + 1);
      bool ok = false;
      if (key == "p_gb") {
        ok = ParseProb(value, &ep.p_good_to_bad);
      } else if (key == "p_bg") {
        ok = ParseProb(value, &ep.p_bad_to_good);
      } else if (key == "loss_good") {
        ok = ParseProb(value, &ep.loss_good);
      } else if (key == "loss_bad") {
        ok = ParseProb(value, &ep.loss_bad);
      } else if (key == "p") {
        ok = ParseProb(value, &ep.p);
      } else if (key == "delay" || key == "max") {
        ok = ParseTime(value, &ep.delay) && ep.delay >= 0;
      } else if (key == "restart_after") {
        if (!IsCrashFault(ep.type)) {
          return LineError(lineno, "'restart_after' only applies to crash episodes");
        }
        ok = ParseTime(value, &ep.restart_after) && ep.restart_after >= 0;
      } else {
        return LineError(lineno, "unknown key '" + key + "'");
      }
      if (!ok) {
        return LineError(lineno, "bad value for '" + key + "': '" + value + "'");
      }
    }
    plan.episodes.push_back(ep);
  }
  return plan;
}

Result<FaultPlan> FaultPlan::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFoundError("cannot open fault plan '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<FaultPlan> plan = Parse(text.str());
  if (!plan.ok()) {
    return Status(plan.status().code(), path + ": " + plan.status().message());
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed " << seed << "\n";
  for (const FaultEpisode& ep : episodes) {
    os << TargetPrefix(FaultTargetKindOf(ep.type));
    if (ep.target < 0) {
      os << "*";
    } else {
      os << ep.target;
    }
    os << ' ' << FaultTypeName(ep.type) << ' ' << FormatTime(ep.start) << ' '
       << FormatTime(ep.end);
    switch (ep.type) {
      case FaultType::kBurstLoss:
        os << " p_gb=" << FormatProb(ep.p_good_to_bad) << " p_bg=" << FormatProb(ep.p_bad_to_good)
           << " loss_good=" << FormatProb(ep.loss_good) << " loss_bad=" << FormatProb(ep.loss_bad);
        break;
      case FaultType::kReorder:
        os << " p=" << FormatProb(ep.p) << " delay=" << FormatTime(ep.delay);
        break;
      case FaultType::kDuplicate:
      case FaultType::kSilentDrop:
      case FaultType::kDmaReadError:
      case FaultType::kDmaWriteError:
        os << " p=" << FormatProb(ep.p);
        break;
      case FaultType::kJitter:
        os << " max=" << FormatTime(ep.delay);
        break;
      case FaultType::kLinkDown:
        break;
      case FaultType::kHostCrash:
      case FaultType::kNicCrash:
      case FaultType::kSwitchCrash:
        if (ep.restart_after >= 0) {
          os << " restart_after=" << FormatTime(ep.restart_after);
        }
        break;
    }
    os << "\n";
  }
  return os.str();
}

FaultPlan MakeRandomPlan(uint64_t seed, SimTime horizon) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC845u);
  // Windows are drawn in whole nanoseconds: SimTime ticks are picoseconds,
  // but the plan text format bottoms out at "ns", and generated plans must
  // survive the ToString() -> Parse() round trip exactly (CI replays dumped
  // plan artifacts).
  const auto window = [&](SimTime min_len, SimTime max_len) {
    FaultEpisode ep;
    ep.start = Ns(int64_t(rng.Below(uint64_t(horizon / 2 / kNs))));
    ep.end = ep.start + Ns(int64_t(rng.Range(uint64_t(min_len / kNs), uint64_t(max_len / kNs))));
    return ep;
  };
  const int n = int(rng.Range(2, 5));
  for (int i = 0; i < n; ++i) {
    FaultEpisode ep = window(horizon / 20, horizon / 4);
    ep.target = -1;  // all link sides
    switch (rng.Below(4)) {
      case 0:
        ep.type = FaultType::kBurstLoss;
        ep.p_good_to_bad = 0.01 + 0.04 * rng.NextDouble();
        ep.p_bad_to_good = 0.2 + 0.3 * rng.NextDouble();
        ep.loss_good = 0;
        ep.loss_bad = 0.3 + 0.4 * rng.NextDouble();
        break;
      case 1:
        ep.type = FaultType::kReorder;
        ep.p = 0.02 + 0.05 * rng.NextDouble();
        ep.delay = Us(int64_t(rng.Range(2, 20)));
        break;
      case 2:
        ep.type = FaultType::kDuplicate;
        ep.p = 0.02 + 0.08 * rng.NextDouble();
        break;
      default:
        ep.type = FaultType::kJitter;
        ep.delay = Ns(int64_t(rng.Range(100, 3000)));
        break;
    }
    plan.episodes.push_back(ep);
  }
  // A short, hard link flap: long enough to force retransmissions, short
  // enough that the default retry budget usually (but not always) survives.
  {
    FaultEpisode ep = window(horizon / 50, horizon / 10);
    ep.target = -1;
    ep.type = FaultType::kLinkDown;
    plan.episodes.push_back(ep);
  }
  if (rng.Chance(0.5)) {
    FaultEpisode ep = window(horizon / 20, horizon / 5);
    ep.target = -1;
    ep.type = rng.Chance(0.5) ? FaultType::kDmaReadError : FaultType::kDmaWriteError;
    ep.p = 0.05 + 0.1 * rng.NextDouble();
    plan.episodes.push_back(ep);
  }
  return plan;
}

FaultPlan MakeCrashPlan(uint64_t seed, SimTime horizon, int num_hosts,
                        int num_switches) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC0FFEEull);
  // Crash points land in [10%, 60%] of the horizon, restart delays in
  // [2%, 20%]: the component is back with at least a third of the run left,
  // so leases re-acquire and sessions drain. Whole-ns draws — see
  // MakeRandomPlan for why.
  const auto crash_at = [&] {
    return Ns(int64_t(rng.Range(uint64_t(horizon / 10 / kNs), uint64_t(horizon * 6 / 10 / kNs))));
  };
  const auto restart_delay = [&] {
    return Ns(int64_t(rng.Range(uint64_t(horizon / 50 / kNs), uint64_t(horizon / 5 / kNs))));
  };
  const int n = 1 + int(rng.Below(2));
  for (int i = 0; i < n; ++i) {
    FaultEpisode ep;
    ep.type = rng.Chance(0.5) ? FaultType::kHostCrash : FaultType::kNicCrash;
    // Spare node 0: crashing every node at once leaves no survivor to detect
    // the death, and node 0 is the canonical observer in the scenarios.
    ep.target = num_hosts > 1 ? 1 + int(rng.Below(uint64_t(num_hosts - 1))) : 0;
    ep.start = crash_at();
    ep.restart_after = restart_delay();
    plan.episodes.push_back(ep);
  }
  if (num_switches > 0 && rng.Chance(0.4)) {
    FaultEpisode ep;
    ep.type = FaultType::kSwitchCrash;
    ep.target = int(rng.Below(uint64_t(num_switches)));
    ep.start = crash_at();
    ep.restart_after = restart_delay() / 4;  // switches come back fast
    plan.episodes.push_back(ep);
  }
  if (rng.Chance(0.5)) {
    // A concurrent link fault so recovery overlaps an unreliable wire.
    FaultEpisode ep;
    ep.target = -1;
    ep.type = FaultType::kDuplicate;
    ep.p = 0.02 + 0.05 * rng.NextDouble();
    ep.start = Ns(int64_t(rng.Below(uint64_t(horizon / 2 / kNs))));
    ep.end = ep.start + Ns(int64_t(rng.Range(uint64_t(horizon / 20 / kNs), uint64_t(horizon / 4 / kNs))));
    plan.episodes.push_back(ep);
  }
  return plan;
}

}  // namespace strom
