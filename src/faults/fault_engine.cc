#include "src/faults/fault_engine.h"

#include "src/common/logging.h"

namespace strom {

FaultEngine::FaultEngine(Simulator& sim, std::shared_ptr<const FaultPlan> plan)
    : sim_(sim), plan_(std::move(plan)) {
  STROM_CHECK(plan_ != nullptr);
}

FaultEngine::Stream& FaultEngine::StreamFor(size_t episode_index, int target_index) {
  const auto key = std::make_pair(episode_index, target_index);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    // Seed depends only on (plan seed, episode, target): decisions don't
    // shift when unrelated attachments or episodes are added.
    SplitMix64 sm(plan_->seed + 0x9E3779B97F4A7C15ull * (episode_index + 1) +
                  0xC2B2AE3D27D4EB4Full * uint64_t(target_index + 1));
    it = streams_.emplace(key, Stream{Rng(sm.Next())}).first;
  }
  return it->second;
}

void FaultEngine::AttachLink(PointToPointLink& link, int side_base) {
  link.SetFaultHook([this, side_base](int side, SimTime now) {
    return OnFrame(side_base + side, now);
  });
}

void FaultEngine::AttachDma(int node_index, DmaEngine& dma) {
  dma.SetFaultHook([this, node_index](bool is_write, SimTime now) {
    return OnDmaCommand(node_index, is_write, now);
  });
}

LinkFaultDecision FaultEngine::OnFrame(int global_side, SimTime now) {
  LinkFaultDecision decision;
  for (size_t i = 0; i < plan_->episodes.size(); ++i) {
    const FaultEpisode& ep = plan_->episodes[i];
    if (!IsLinkFault(ep.type) || !ep.Matches(global_side) || !ep.ActiveAt(now)) {
      continue;
    }
    Stream& st = StreamFor(i, global_side);
    switch (ep.type) {
      case FaultType::kLinkDown:
        decision.drop = true;
        break;
      case FaultType::kBurstLoss: {
        // Evolve the Gilbert–Elliott chain once per frame, then sample loss
        // in the resulting state. Always consume the same number of RNG
        // draws so episodes compose deterministically.
        if (st.bad) {
          if (st.rng.Chance(ep.p_bad_to_good)) {
            st.bad = false;
          }
        } else if (st.rng.Chance(ep.p_good_to_bad)) {
          st.bad = true;
        }
        const double loss = st.bad ? ep.loss_bad : ep.loss_good;
        if (loss > 0 && st.rng.Chance(loss)) {
          decision.drop = true;
        }
        break;
      }
      case FaultType::kReorder:
        if (st.rng.Chance(ep.p)) {
          decision.reorder = true;
          decision.extra_delay = std::max(decision.extra_delay, ep.delay);
        }
        break;
      case FaultType::kDuplicate:
        if (st.rng.Chance(ep.p)) {
          decision.duplicate = true;
        }
        break;
      case FaultType::kSilentDrop:
        if (st.rng.Chance(ep.p)) {
          decision.silent = true;
        }
        break;
      case FaultType::kJitter:
        if (ep.delay > 0) {
          decision.extra_delay += SimTime(st.rng.Below(uint64_t(ep.delay) + 1));
        }
        break;
      default:
        break;
    }
  }
  if (decision.drop) {
    ++counters_.frames_dropped;
  } else if (decision.silent) {
    // The engine remembers the injection even though the link (by design)
    // won't: this is the ground truth an audit violation is checked against.
    ++counters_.frames_silently_dropped;
  } else {
    // Dropped frames never reach the wire, so delay/duplication on them is
    // moot; count only what the receiver can observe.
    if (decision.extra_delay > 0) {
      ++counters_.frames_delayed;
    }
    if (decision.duplicate) {
      ++counters_.frames_duplicated;
    }
  }
  return decision;
}

Status FaultEngine::OnDmaCommand(int node_index, bool is_write, SimTime now) {
  for (size_t i = 0; i < plan_->episodes.size(); ++i) {
    const FaultEpisode& ep = plan_->episodes[i];
    if (FaultTargetKindOf(ep.type) != FaultTargetKind::kDma ||
        !ep.Matches(node_index) || !ep.ActiveAt(now)) {
      continue;
    }
    const bool wants_write = ep.type == FaultType::kDmaWriteError;
    if (wants_write != is_write) {
      continue;
    }
    Stream& st = StreamFor(i, node_index);
    if (st.rng.Chance(ep.p)) {
      if (is_write) {
        ++counters_.dma_write_errors;
        return InternalError("injected DMA write fault");
      }
      ++counters_.dma_read_errors;
      return InternalError("injected DMA read fault");
    }
  }
  return Status::Ok();
}

void FaultEngine::ArmCrashes(FaultTargetKind kind, int target_index, Simulator& sim,
                             std::function<void(const FaultEpisode&)> crash_cb,
                             std::function<void(const FaultEpisode&)> restart_cb) {
  for (size_t i = 0; i < plan_->episodes.size(); ++i) {
    const FaultEpisode& ep = plan_->episodes[i];
    if (!IsCrashFault(ep.type) || FaultTargetKindOf(ep.type) != kind ||
        !ep.Matches(target_index)) {
      continue;
    }
    sim.ScheduleAt(ep.start, [this, &ep, crash_cb] {
      switch (ep.type) {
        case FaultType::kHostCrash:
          ++counters_.hosts_crashed;
          break;
        case FaultType::kNicCrash:
          ++counters_.nics_crashed;
          break;
        default:
          ++counters_.switches_crashed;
          break;
      }
      crash_cb(ep);
    });
    if (ep.restart_after >= 0 && restart_cb) {
      sim.ScheduleAt(ep.start + ep.restart_after, [this, &ep, restart_cb] {
        ++counters_.restarts;
        restart_cb(ep);
      });
    }
  }
}

}  // namespace strom
