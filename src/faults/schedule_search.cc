#include "src/faults/schedule_search.h"

#include <utility>
#include <vector>

namespace strom {
namespace {

// Halves a time toward zero on the whole-ns grid the plan grammar round-trips.
SimTime HalveNs(SimTime t) { return Ns((t / kNs) / 2); }

// One shrink attempt: runs the candidate unless the budget is spent, and
// accepts it only if it reproduces the same violation kind.
class Verifier {
 public:
  Verifier(const ScheduleRunner& runner, std::string kind, int max_runs)
      : runner_(runner), kind_(std::move(kind)), max_runs_(max_runs) {}

  bool Reproduces(const FaultPlan& candidate) {
    if (runs_ >= max_runs_) {
      return false;
    }
    ++runs_;
    const ScheduleOutcome out = runner_(candidate);
    return out.violation && out.violation_kind == kind_;
  }

  bool budget_left() const { return runs_ < max_runs_; }
  int runs() const { return runs_; }

 private:
  const ScheduleRunner& runner_;
  std::string kind_;
  int max_runs_;
  int runs_ = 0;
};

}  // namespace

FaultPlan ShrinkPlan(const FaultPlan& plan, const ScheduleRunner& runner,
                     const std::string& violation_kind, int max_runs,
                     int* runs_used) {
  Verifier verify(runner, violation_kind, max_runs);
  FaultPlan best = plan;

  // Phase 1: greedy single-episode removal to a fixpoint. With the small
  // schedules MakeCrashPlan emits (<= 4 episodes) this finds the same minima
  // as full ddmin without the subset bookkeeping.
  bool removed = true;
  while (removed && best.episodes.size() > 1 && verify.budget_left()) {
    removed = false;
    for (size_t i = 0; i < best.episodes.size(); ++i) {
      FaultPlan candidate = best;
      candidate.episodes.erase(candidate.episodes.begin() + long(i));
      if (verify.Reproduces(candidate)) {
        best = std::move(candidate);
        removed = true;
        break;  // restart the scan over the smaller schedule
      }
    }
  }

  // Phase 2: coordinate shrinking on the survivors. Each mutation halves one
  // quantity toward zero and keeps the result only if the violation survives;
  // a successful halving is retried on the same coordinate until it stops
  // reproducing, so delays collapse geometrically within the budget.
  const auto shrink_coordinate = [&](auto mutate) {
    for (size_t i = 0; i < best.episodes.size() && verify.budget_left(); ++i) {
      for (;;) {
        FaultPlan candidate = best;
        if (!mutate(candidate.episodes[i]) || !verify.Reproduces(candidate)) {
          break;
        }
        best = std::move(candidate);
      }
    }
  };
  // Restart delays: a reproducer with restart_after=0 says "the bug is not a
  // race with the restart timing" — maximally informative when it holds.
  shrink_coordinate([](FaultEpisode& ep) {
    if (!IsCrashFault(ep.type) || ep.restart_after <= 0) {
      return false;
    }
    ep.restart_after = HalveNs(ep.restart_after);
    return true;
  });
  // Crash/start times: earlier crashes mean shorter replays.
  shrink_coordinate([](FaultEpisode& ep) {
    if (ep.start <= 0) {
      return false;
    }
    ep.start = HalveNs(ep.start);
    return true;
  });
  // Windowed (link/DMA) episode durations.
  shrink_coordinate([](FaultEpisode& ep) {
    if (IsCrashFault(ep.type) || ep.end <= ep.start) {
      return false;
    }
    const SimTime len = HalveNs(ep.end - ep.start);
    if (len <= 0) {
      return false;
    }
    ep.end = ep.start + len;
    return true;
  });

  if (runs_used != nullptr) {
    *runs_used = verify.runs();
  }
  return best;
}

SearchResult ExploreSchedules(const SearchConfig& config, const ScheduleRunner& runner) {
  SearchResult result;
  for (int k = 0; k < config.budget; ++k) {
    const uint64_t seed = config.base_seed + uint64_t(k);
    const FaultPlan plan =
        MakeCrashPlan(seed, config.horizon, config.num_hosts, config.num_switches);
    ++result.schedules_run;
    const ScheduleOutcome outcome = runner(plan);
    if (!outcome.violation) {
      continue;
    }
    result.found = true;
    result.violating_seed = seed;
    result.outcome = outcome;
    result.original = plan;
    result.minimal = ShrinkPlan(plan, runner, outcome.violation_kind,
                                config.max_shrink_runs, &result.shrink_runs);
    return result;
  }
  return result;
}

}  // namespace strom
