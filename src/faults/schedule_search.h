// Deterministic chaos-schedule explorer: enumerates seeded crash/fault
// schedules (MakeCrashPlan — crash points x restart delays x concurrent link
// faults), runs each through a caller-supplied ScheduleRunner, and when a run
// violates an invariant shrinks the schedule delta-debugging-style to a
// minimal reproducer.
//
// The explorer is pure control flow over FaultPlans: it knows nothing about
// testbeds or workloads. The runner closure owns the expensive part (build a
// fabric, apply the plan, run the workload, classify the outcome), which keeps
// this library free of upward dependencies and lets tests drive the search
// with synthetic oracles.
//
// Everything is deterministic: schedule k of a search is
// MakeCrashPlan(base_seed + k, ...), shrink candidates are tried in a fixed
// order, and re-verification uses the same runner — so a found reproducer
// replays bit-for-bit from its plan file alone.
#ifndef SRC_FAULTS_SCHEDULE_SEARCH_H_
#define SRC_FAULTS_SCHEDULE_SEARCH_H_

#include <functional>
#include <string>

#include "src/faults/fault_plan.h"

namespace strom {

// Outcome of running one schedule. `violation_kind` is a short stable label
// ("non-terminal-ops", "deadline", "audit", "frame-leak", ...) used by the
// shrinker to check that a reduced schedule still reproduces the *same*
// failure, not a different one it happened to trip.
struct ScheduleOutcome {
  bool violation = false;
  std::string violation_kind;
  std::string detail;  // human-readable evidence, e.g. "arrived=82 terminal=80"
};

// Runs one fault plan against the system under test and classifies the
// result. Must be deterministic in the plan (same plan -> same outcome).
using ScheduleRunner = std::function<ScheduleOutcome(const FaultPlan&)>;

struct SearchConfig {
  uint64_t base_seed = 1;
  int budget = 32;         // schedules enumerated before giving up
  SimTime horizon = Ms(2); // crash-plan horizon, normally the workload window
  int num_hosts = 3;
  int num_switches = 1;
  int max_shrink_runs = 64;  // runner invocations the shrinker may spend
};

struct SearchResult {
  bool found = false;
  int schedules_run = 0;     // search-phase runner invocations
  int shrink_runs = 0;       // shrink-phase runner invocations
  uint64_t violating_seed = 0;
  ScheduleOutcome outcome;   // of the original violating schedule
  FaultPlan original;        // the schedule as enumerated
  FaultPlan minimal;         // the shrunk reproducer (== original if nothing
                             // smaller still violates)
};

// Enumerates schedules seed = base_seed, base_seed+1, ... and runs each until
// one violates or the budget is exhausted. On violation, shrinks and returns
// immediately (first violation wins — later seeds are never run).
SearchResult ExploreSchedules(const SearchConfig& config, const ScheduleRunner& runner);

// Shrinks `plan` to a smaller schedule that still produces a violation of
// `violation_kind` under `runner`:
//   1. greedy episode removal to a fixpoint — repeatedly drop any single
//      episode whose removal preserves the violation;
//   2. coordinate shrinking — per surviving episode, halve restart_after,
//      halve the crash/start time, and halve windowed-episode durations, each
//      re-verified and kept only if the violation survives.
// Spends at most `max_runs` runner invocations (each candidate costs one);
// `runs_used`, if non-null, receives the actual count. The returned plan is
// always a verified reproducer (worst case: `plan` itself, zero runs spent).
FaultPlan ShrinkPlan(const FaultPlan& plan, const ScheduleRunner& runner,
                     const std::string& violation_kind, int max_runs,
                     int* runs_used = nullptr);

}  // namespace strom

#endif  // SRC_FAULTS_SCHEDULE_SEARCH_H_
