// Deterministic fault plans: a small text format describing timed, seeded
// fault episodes against link sides or the PCIe/DMA path. A plan is pure
// data — the FaultEngine (fault_engine.h) interprets it against a testbed.
//
// Grammar (one directive per line, '#' starts a comment):
//
//   seed <N>
//   <target> <type> <start> <end> [key=value ...]
//
// target:  linkK   one transmit direction (K is a global side index: the
//                  direct link's sides are link0/link1; switch-port links
//                  continue the numbering)
//          link*   every link side
//          dmaK    node K's DMA engine
//          dma*    every DMA engine
//   times: an integer with a unit suffix (ns|us|ms|s), or '-' for an
//          open-ended episode.
//   types (link targets):
//     burst_loss  p_gb= p_bg= loss_good= loss_bad=   Gilbert–Elliott loss;
//                 state evolves once per frame entering Send()
//     reorder     p= delay=<time>    chance p to hold a frame back by delay
//     duplicate   p=                 chance p to deliver a frame twice
//     jitter      max=<time>         uniform extra delay in [0, max]
//     down        (no params)        drop everything: a timed link flap
//     silent_drop p=                 chance p a frame vanishes WITHOUT being
//                 counted as dropped — deliberately breaks link conservation
//                 so the --audit invariants can be exercised end to end.
//                 Never emitted by MakeRandomPlan (chaos soaks must stay
//                 audit-clean); for tests and drills only.
//   types (dma targets):
//     read_error  p=                 chance p a DMA read completes in error
//     write_error p=                 chance p a DMA write completes in error
//
// Example:
//   seed 7
//   link0 burst_loss 10us 4ms p_gb=0.02 p_bg=0.3 loss_good=0 loss_bad=0.5
//   link* jitter 0us - max=2us
//   dma1 read_error 1ms 2ms p=0.1
#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/time.h"

namespace strom {

enum class FaultType {
  kBurstLoss,
  kReorder,
  kDuplicate,
  kJitter,
  kLinkDown,
  kSilentDrop,
  kDmaReadError,
  kDmaWriteError,
};

const char* FaultTypeName(FaultType type);
bool IsLinkFault(FaultType type);

struct FaultEpisode {
  FaultType type = FaultType::kLinkDown;
  int target = -1;       // link side / node index; -1 = wildcard
  SimTime start = 0;
  SimTime end = -1;      // -1 = open-ended
  // Gilbert–Elliott burst loss.
  double p_good_to_bad = 0;
  double p_bad_to_good = 0;
  double loss_good = 0;
  double loss_bad = 0;
  // reorder / duplicate / dma errors.
  double p = 0;
  // reorder hold-back time / jitter bound.
  SimTime delay = 0;

  bool ActiveAt(SimTime now) const {
    return now >= start && (end < 0 || now < end);
  }
  bool Matches(int target_index) const {
    return target < 0 || target == target_index;
  }
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultEpisode> episodes;

  // Parses the text grammar above. Returns the first syntax error with its
  // line number.
  static Result<FaultPlan> Parse(const std::string& text);
  // Reads `path` and parses it.
  static Result<FaultPlan> Load(const std::string& path);

  // Serializes back to the text grammar (round-trips through Parse); used to
  // dump failing plans as CI artifacts.
  std::string ToString() const;
};

// Generates a small randomized plan from `seed` for chaos soaks: 2–5 link
// episodes plus an optional DMA-error episode, with probabilities moderate
// enough that traffic keeps making progress between faults. Deterministic in
// `seed` and `horizon`.
FaultPlan MakeRandomPlan(uint64_t seed, SimTime horizon);

}  // namespace strom

#endif  // SRC_FAULTS_FAULT_PLAN_H_
