// Deterministic fault plans: a small text format describing timed, seeded
// fault episodes against link sides, the PCIe/DMA path, or whole components
// (hosts, NICs, switches). A plan is pure data — the FaultEngine
// (fault_engine.h) interprets it against a testbed.
//
// Grammar (one directive per line, '#' starts a comment):
//
//   seed <N>
//   <target> <type> <start> <end> [key=value ...]
//
// target:  linkK   one transmit direction (K is a global side index: the
//                  direct link's sides are link0/link1; switch-port links
//                  continue the numbering)
//          link*   every link side
//          dmaK    node K's DMA engine
//          dma*    every DMA engine
//          hostK   node K, host + NIC as one failure domain
//          nicK    node K's NIC only (host software survives)
//          switchK fabric switch K (leaves first, then spines)
//          host* / nic* / switch*   every such component
//   times: an integer with a unit suffix (ns|us|ms|s), or '-' for an
//          open-ended episode.
//   types (link targets):
//     burst_loss  p_gb= p_bg= loss_good= loss_bad=   Gilbert–Elliott loss;
//                 state evolves once per frame entering Send()
//     reorder     p= delay=<time>    chance p to hold a frame back by delay
//     duplicate   p=                 chance p to deliver a frame twice
//     jitter      max=<time>         uniform extra delay in [0, max]
//     down        (no params)        drop everything: a timed link flap
//     silent_drop p=                 chance p a frame vanishes WITHOUT being
//                 counted as dropped — deliberately breaks link conservation
//                 so the --audit invariants can be exercised end to end.
//                 Never emitted by MakeRandomPlan (chaos soaks must stay
//                 audit-clean); for tests and drills only.
//   types (dma targets):
//     read_error  p=                 chance p a DMA read completes in error
//     write_error p=                 chance p a DMA write completes in error
//   types (host/nic/switch targets):
//     crash       [restart_after=<time>]
//                 The component dies at <start>, atomically dropping all
//                 in-flight state it owns (QP tables, DMA backlog, egress
//                 FIFOs, kernel state). With restart_after it comes back
//                 that long after the crash (crash-recovery); without, it
//                 stays dead (crash-stop). <end> is ignored — a crash is an
//                 instant, not a window — and is written as '-'.
//
// Example:
//   seed 7
//   link0 burst_loss 10us 4ms p_gb=0.02 p_bg=0.3 loss_good=0 loss_bad=0.5
//   link* jitter 0us - max=2us
//   dma1 read_error 1ms 2ms p=0.1
//   host1 crash 300us - restart_after=150us
//   switch0 crash 1ms -
#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/time.h"

namespace strom {

enum class FaultType {
  kBurstLoss,
  kReorder,
  kDuplicate,
  kJitter,
  kLinkDown,
  kSilentDrop,
  kDmaReadError,
  kDmaWriteError,
  kHostCrash,
  kNicCrash,
  kSwitchCrash,
};

// What a fault episode targets; determines the plan-grammar prefix and which
// attachment the FaultEngine aims the episode at.
enum class FaultTargetKind {
  kLink,    // one transmit direction of a point-to-point link
  kDma,     // a node's DMA engine
  kHost,    // a node: host + NIC as one failure domain
  kNic,     // a node's NIC only
  kSwitch,  // a fabric switch
};

const char* FaultTypeName(FaultType type);
FaultTargetKind FaultTargetKindOf(FaultType type);
bool IsLinkFault(FaultType type);
// host_crash / nic_crash / switch_crash.
bool IsCrashFault(FaultType type);

struct FaultEpisode {
  FaultType type = FaultType::kLinkDown;
  int target = -1;       // link side / node index / switch index; -1 = wildcard
  SimTime start = 0;
  SimTime end = -1;      // -1 = open-ended (ignored for crash episodes)
  // Gilbert–Elliott burst loss.
  double p_good_to_bad = 0;
  double p_bad_to_good = 0;
  double loss_good = 0;
  double loss_bad = 0;
  // reorder / duplicate / dma errors.
  double p = 0;
  // reorder hold-back time / jitter bound.
  SimTime delay = 0;
  // Crash episodes: time from crash to restart; -1 = crash-stop (never
  // restarts).
  SimTime restart_after = -1;

  bool ActiveAt(SimTime now) const {
    return now >= start && (end < 0 || now < end);
  }
  bool Matches(int target_index) const {
    return target < 0 || target == target_index;
  }
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultEpisode> episodes;

  // Parses the text grammar above. Returns the first syntax error with its
  // line number.
  static Result<FaultPlan> Parse(const std::string& text);
  // Reads `path` and parses it.
  static Result<FaultPlan> Load(const std::string& path);

  // Serializes back to the text grammar (round-trips through Parse); used to
  // dump failing plans as CI artifacts.
  std::string ToString() const;
};

// Generates a small randomized plan from `seed` for chaos soaks: 2–5 link
// episodes plus an optional DMA-error episode, with probabilities moderate
// enough that traffic keeps making progress between faults. Deterministic in
// `seed` and `horizon`. Never emits crash episodes — see MakeCrashPlan.
FaultPlan MakeRandomPlan(uint64_t seed, SimTime horizon);

// Generates a crash-recovery plan from `seed`: 1–2 node crash episodes
// (host or NIC level, always with restart_after so traffic can recover), an
// optional switch crash when `num_switches > 0`, and an optional concurrent
// link-fault episode. Crash points land in the first 60% of the horizon and
// restart delays stay well under the remainder, so a drain window exists.
// All times are whole nanoseconds (the text format round-trips exactly).
FaultPlan MakeCrashPlan(uint64_t seed, SimTime horizon, int num_hosts,
                        int num_switches = 0);

}  // namespace strom

#endif  // SRC_FAULTS_FAULT_PLAN_H_
