// Interprets a FaultPlan against a running testbed. The engine installs
// per-frame hooks on links and per-command hooks on DMA engines; each
// (episode, attachment) pair gets its own RNG stream seeded from the plan
// seed and the indices alone, so fault decisions are a pure function of the
// plan and the sequence of frames/commands — independent of wall clock,
// attach order, and whatever else the simulation does.
#ifndef SRC_FAULTS_FAULT_ENGINE_H_
#define SRC_FAULTS_FAULT_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/faults/fault_plan.h"
#include "src/netsim/link.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace strom {

struct FaultEngineCounters {
  uint64_t frames_dropped = 0;     // burst loss + link-down episodes
  uint64_t frames_delayed = 0;     // reorder + jitter episodes
  uint64_t frames_duplicated = 0;
  uint64_t frames_silently_dropped = 0;  // silent_drop episodes (audit drills)
  uint64_t dma_read_errors = 0;
  uint64_t dma_write_errors = 0;
  uint64_t hosts_crashed = 0;
  uint64_t nics_crashed = 0;
  uint64_t switches_crashed = 0;
  uint64_t restarts = 0;
};

class FaultEngine {
 public:
  FaultEngine(Simulator& sim, std::shared_ptr<const FaultPlan> plan);

  // Installs the frame hook on both sides of `link`. The sides become global
  // targets `side_base` and `side_base + 1` ("linkN" in the plan grammar).
  void AttachLink(PointToPointLink& link, int side_base = 0);

  // Installs the command hook on node `node_index`'s DMA engine ("dmaN").
  void AttachDma(int node_index, DmaEngine& dma);

  // Schedules crash (and, for crash-recovery episodes, restart) callbacks for
  // every crash episode of `kind` matching `target_index`, on `sim` — which
  // must be the LP that owns the component, so crash side effects happen in
  // the owner's timeline and stay deterministic at any thread count. The
  // crash callback fires at episode start; the restart callback fires
  // `restart_after` later (never for crash-stop episodes). Crash/restart
  // counters are maintained by the engine.
  void ArmCrashes(FaultTargetKind kind, int target_index, Simulator& sim,
                  std::function<void(const FaultEpisode&)> crash_cb,
                  std::function<void(const FaultEpisode&)> restart_cb);

  const FaultPlan& plan() const { return *plan_; }
  const FaultEngineCounters& counters() const { return counters_; }

 private:
  // One independent RNG stream (plus Gilbert–Elliott state) per
  // (episode, target) pair.
  struct Stream {
    Rng rng;
    bool bad = false;  // Gilbert–Elliott state
  };

  Stream& StreamFor(size_t episode_index, int target_index);
  LinkFaultDecision OnFrame(int global_side, SimTime now);
  Status OnDmaCommand(int node_index, bool is_write, SimTime now);

  Simulator& sim_;
  std::shared_ptr<const FaultPlan> plan_;
  std::map<std::pair<size_t, int>, Stream> streams_;
  FaultEngineCounters counters_;
};

}  // namespace strom

#endif  // SRC_FAULTS_FAULT_ENGINE_H_
