// Interprets a FaultPlan against a running testbed. The engine installs
// per-frame hooks on links and per-command hooks on DMA engines; each
// (episode, attachment) pair gets its own RNG stream seeded from the plan
// seed and the indices alone, so fault decisions are a pure function of the
// plan and the sequence of frames/commands — independent of wall clock,
// attach order, and whatever else the simulation does.
#ifndef SRC_FAULTS_FAULT_ENGINE_H_
#define SRC_FAULTS_FAULT_ENGINE_H_

#include <map>
#include <memory>
#include <utility>

#include "src/common/rng.h"
#include "src/faults/fault_plan.h"
#include "src/netsim/link.h"
#include "src/pcie/dma_engine.h"
#include "src/sim/simulator.h"

namespace strom {

struct FaultEngineCounters {
  uint64_t frames_dropped = 0;     // burst loss + link-down episodes
  uint64_t frames_delayed = 0;     // reorder + jitter episodes
  uint64_t frames_duplicated = 0;
  uint64_t frames_silently_dropped = 0;  // silent_drop episodes (audit drills)
  uint64_t dma_read_errors = 0;
  uint64_t dma_write_errors = 0;
};

class FaultEngine {
 public:
  FaultEngine(Simulator& sim, std::shared_ptr<const FaultPlan> plan);

  // Installs the frame hook on both sides of `link`. The sides become global
  // targets `side_base` and `side_base + 1` ("linkN" in the plan grammar).
  void AttachLink(PointToPointLink& link, int side_base = 0);

  // Installs the command hook on node `node_index`'s DMA engine ("dmaN").
  void AttachDma(int node_index, DmaEngine& dma);

  const FaultPlan& plan() const { return *plan_; }
  const FaultEngineCounters& counters() const { return counters_; }

 private:
  // One independent RNG stream (plus Gilbert–Elliott state) per
  // (episode, target) pair.
  struct Stream {
    Rng rng;
    bool bad = false;  // Gilbert–Elliott state
  };

  Stream& StreamFor(size_t episode_index, int target_index);
  LinkFaultDecision OnFrame(int global_side, SimTime now);
  Status OnDmaCommand(int node_index, bool is_write, SimTime now);

  Simulator& sim_;
  std::shared_ptr<const FaultPlan> plan_;
  std::map<std::pair<size_t, int>, Stream> streams_;
  FaultEngineCounters counters_;
};

}  // namespace strom

#endif  // SRC_FAULTS_FAULT_ENGINE_H_
